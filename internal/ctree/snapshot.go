// Column export/import: the bridge between the arena storage and the
// on-disk snapshot format (internal/treeio).
//
// A Counting-tree's whole state is six structure-of-arrays columns
// (Loc, N, Used, Level, Parent and the half-space slab P) — the
// linkage columns (child chains, child tables) are derivable, because
// ensureChild appends children at the chain tail and cells are stored
// in creation order, so every parent's child chain is exactly its
// children in ascending Ref order. NewFromColumns rebuilds them in one
// linear pass and, crucially, REVALIDATES every structural invariant
// (parents precede children, level chains, per-axis positions inside
// the dimension mask, child counts summing to the parent's count, the
// half-space counters matching the children's positions), so columns
// read from an untrusted file can never assemble into a silently wrong
// tree: they either reproduce a tree some sequence of inserts could
// have built, or they are rejected.
package ctree

import (
	"fmt"
	"math"
	"math/bits"
)

// Columns is the complete per-cell state of a Counting-tree as views
// into its arena slabs, row 0 being the root sentinel. Callers must
// not modify the slices (Columns from a live tree alias its arena).
type Columns struct {
	// Loc is the cell's position relative to its parent (bit j = upper
	// half of axis j).
	Loc []uint64
	// N is the cell's point count.
	N []int32
	// Used is the usedCell flag consumed by the clustering phase.
	Used []bool
	// Level is the cell's tree level (0 for the root sentinel).
	Level []uint8
	// Parent is the parent cell's Ref (NilRef for the root sentinel).
	Parent []Ref
	// P is the contiguous half-space slab: row r's d counters live at
	// P[r*d : (r+1)*d].
	P []int32
}

// Rows returns the number of column rows (stored cells plus the root
// sentinel).
func (c Columns) Rows() int { return len(c.Loc) }

// Columns returns the tree's state columns as views into the arena.
// The views stay valid until the next Insert/MergeFrom; callers must
// not modify them.
func (t *Tree) Columns() Columns {
	return Columns{Loc: t.loc, N: t.n, Used: t.used, Level: t.level, Parent: t.parent, P: t.p}
}

// ArenaCapFor returns the arena column capacity a tree with the given
// number of rows (cells + root sentinel) has: the doubling growth
// policy makes it a pure function of the row count, which is what
// keeps MemoryBytes identical across build orders — and across a
// save/load round trip, when the loader allocates columns at exactly
// this capacity (treeio does).
func ArenaCapFor(rows int) int {
	c := arenaInitialCap
	for c < rows {
		c *= 2
	}
	return c
}

// NewFromColumns assembles a Counting-tree from its state columns,
// rebuilding the derived linkage (child chains and child tables) in
// one linear pass. The slices are taken over by the tree when their
// capacities match the canonical arena sizing (ArenaCapFor for the
// per-cell columns, ArenaCapFor·d for P); otherwise they are copied
// into canonically sized slabs so MemoryBytes stays a pure function of
// the cell set.
//
// Every structural invariant is checked and any violation returns an
// error naming it: untrusted columns either reproduce a tree that a
// sequence of inserts could have built, or they are refused. The
// returned tree reports zero build statistics (ArenaGrows, BatchRuns);
// its counts, footprint and clustering behavior are exactly those of
// the tree the columns came from.
func NewFromColumns(d, h, eta int, c Columns) (*Tree, error) {
	if d < 1 || d > MaxDims {
		return nil, fmt.Errorf("ctree: dimensionality %d outside [1, %d]", d, MaxDims)
	}
	if h < MinLevels || h > MaxLevels {
		return nil, fmt.Errorf("ctree: H %d outside [%d, %d]", h, MinLevels, MaxLevels)
	}
	rows := len(c.Loc)
	if rows < 1 {
		return nil, fmt.Errorf("ctree: no column rows (the root sentinel is required)")
	}
	if rows-1 > math.MaxInt32 {
		return nil, fmt.Errorf("ctree: %d cells exceed the int32 Ref range", rows-1)
	}
	if len(c.N) != rows || len(c.Used) != rows || len(c.Level) != rows || len(c.Parent) != rows {
		return nil, fmt.Errorf("ctree: column lengths disagree: loc=%d n=%d used=%d level=%d parent=%d",
			rows, len(c.N), len(c.Used), len(c.Level), len(c.Parent))
	}
	if len(c.P) != rows*d {
		return nil, fmt.Errorf("ctree: half-space slab holds %d values, want rows*d = %d", len(c.P), rows*d)
	}
	if eta < 1 || eta > MaxPoints {
		return nil, fmt.Errorf("ctree: point count %d outside [1, %d]", eta, MaxPoints)
	}
	// Root sentinel row: fixed values, never counted.
	if c.Loc[0] != 0 || c.N[0] != 0 || c.Used[0] || c.Level[0] != 0 || c.Parent[0] != NilRef {
		return nil, fmt.Errorf("ctree: row 0 is not the root sentinel")
	}
	dmask := (uint64(1) << uint(d)) - 1
	for j := 0; j < d; j++ {
		if c.P[j] != 0 {
			return nil, fmt.Errorf("ctree: root sentinel has a nonzero half-space counter on axis %d", j)
		}
	}
	t := &Tree{D: d, H: h, Eta: eta, dmask: dmask}
	t.adoptColumns(c, rows)
	// Per-row invariants + linkage rebuild. Parents precede children in
	// Ref order and children chain in creation (= ascending Ref) order,
	// so one forward pass re-links every cell; findChild before linking
	// rejects duplicate (parent, loc) rows, which a blind relink would
	// silently merge.
	for r := 1; r < rows; r++ {
		par := t.parent[r]
		if par < 0 || int(par) >= r {
			return nil, fmt.Errorf("ctree: cell %d has parent ref %d outside [0, %d)", r, par, r)
		}
		if int(t.level[r]) != int(t.level[par])+1 {
			return nil, fmt.Errorf("ctree: cell %d at level %d under a level-%d parent", r, t.level[r], t.level[par])
		}
		if int(t.level[r]) > h-1 {
			return nil, fmt.Errorf("ctree: cell %d at level %d, deeper than the stored maximum %d", r, t.level[r], h-1)
		}
		if t.loc[r]&^dmask != 0 {
			return nil, fmt.Errorf("ctree: cell %d has position bits beyond axis %d", r, d-1)
		}
		n := t.n[r]
		if n < 1 {
			return nil, fmt.Errorf("ctree: cell %d stores a non-positive count %d (empty cells are never stored)", r, n)
		}
		row := t.p[r*d : (r+1)*d]
		for j := 0; j < d; j++ {
			if row[j] < 0 || row[j] > n {
				return nil, fmt.Errorf("ctree: cell %d half-space counter %d on axis %d outside [0, %d]", r, row[j], j, n)
			}
		}
		if t.findChild(par, t.loc[r]) >= 0 {
			return nil, fmt.Errorf("ctree: cells %d and %d duplicate position %#x under parent %d", t.findChild(par, t.loc[r]), r, t.loc[r], par)
		}
		t.linkChild(par, Ref(r))
	}
	// Cross-row consistency: every internal cell's children must account
	// for exactly its points, and its half-space counters must equal the
	// children's mass on the lower side of each axis (the root sentinel's
	// "count" is η). Level-(H-1) cells have no stored children — their
	// half-space counters come from level-H parities the tree does not
	// keep — so the bounds check above is all that can be asserted there.
	var low [MaxDims]int64
	for par := 0; par < rows; par++ {
		if int(t.level[par]) >= h-1 || (par > 0 && t.firstChild[par] < 0) {
			if par > 0 && int(t.level[par]) < h-1 {
				return nil, fmt.Errorf("ctree: internal cell %d at level %d has no children", par, t.level[par])
			}
			continue
		}
		var sum int64
		for j := 0; j < d; j++ {
			low[j] = 0
		}
		for ch := t.firstChild[par]; ch >= 0; ch = t.nextSib[ch] {
			sum += int64(t.n[ch])
			for m := ^t.loc[ch] & dmask; m != 0; m &= m - 1 {
				low[bits.TrailingZeros64(m)] += int64(t.n[ch])
			}
		}
		want := int64(t.n[par])
		if par == 0 {
			want = int64(eta)
		}
		if sum != want {
			return nil, fmt.Errorf("ctree: children of cell %d count %d points, want %d", par, sum, want)
		}
		if par > 0 {
			row := t.p[par*d : (par+1)*d]
			for j := 0; j < d; j++ {
				if low[j] != int64(row[j]) {
					return nil, fmt.Errorf("ctree: cell %d half-space counter on axis %d is %d, children place %d points in the lower half",
						par, j, row[j], low[j])
				}
			}
		}
	}
	return t, nil
}

// NewFromColumnsTrusted assembles a Counting-tree from state columns
// that are already known to be structurally sound — typically columns
// whose per-column checksums just verified against a snapshot this
// process (or a trusted peer) wrote. It performs only the checks that
// keep the linkage rebuild memory-safe (column lengths agree, parents
// precede children, levels chain, positions fit the dimension mask,
// counts are positive) and skips what dominates NewFromColumns: the
// per-row duplicate-child probe and the O(cells·d) cross-row pass that
// re-derives every count and half-space counter from the children.
// Columns that violate the skipped invariants assemble into a tree
// whose counts are wrong in exactly the way the columns are — never
// into out-of-bounds access. Use NewFromColumns for untrusted input.
func NewFromColumnsTrusted(d, h, eta int, c Columns) (*Tree, error) {
	if d < 1 || d > MaxDims {
		return nil, fmt.Errorf("ctree: dimensionality %d outside [1, %d]", d, MaxDims)
	}
	if h < MinLevels || h > MaxLevels {
		return nil, fmt.Errorf("ctree: H %d outside [%d, %d]", h, MinLevels, MaxLevels)
	}
	rows := len(c.Loc)
	if rows < 1 {
		return nil, fmt.Errorf("ctree: no column rows (the root sentinel is required)")
	}
	if rows-1 > math.MaxInt32 {
		return nil, fmt.Errorf("ctree: %d cells exceed the int32 Ref range", rows-1)
	}
	if len(c.N) != rows || len(c.Used) != rows || len(c.Level) != rows || len(c.Parent) != rows {
		return nil, fmt.Errorf("ctree: column lengths disagree: loc=%d n=%d used=%d level=%d parent=%d",
			rows, len(c.N), len(c.Used), len(c.Level), len(c.Parent))
	}
	if len(c.P) != rows*d {
		return nil, fmt.Errorf("ctree: half-space slab holds %d values, want rows*d = %d", len(c.P), rows*d)
	}
	if eta < 1 || eta > MaxPoints {
		return nil, fmt.Errorf("ctree: point count %d outside [1, %d]", eta, MaxPoints)
	}
	if c.Loc[0] != 0 || c.N[0] != 0 || c.Used[0] || c.Level[0] != 0 || c.Parent[0] != NilRef {
		return nil, fmt.Errorf("ctree: row 0 is not the root sentinel")
	}
	dmask := (uint64(1) << uint(d)) - 1
	t := &Tree{D: d, H: h, Eta: eta, dmask: dmask}
	t.adoptColumns(c, rows)
	for r := 1; r < rows; r++ {
		par := t.parent[r]
		if par < 0 || int(par) >= r {
			return nil, fmt.Errorf("ctree: cell %d has parent ref %d outside [0, %d)", r, par, r)
		}
		if int(t.level[r]) != int(t.level[par])+1 {
			return nil, fmt.Errorf("ctree: cell %d at level %d under a level-%d parent", r, t.level[r], t.level[par])
		}
		if int(t.level[r]) > h-1 {
			return nil, fmt.Errorf("ctree: cell %d at level %d, deeper than the stored maximum %d", r, t.level[r], h-1)
		}
		if t.loc[r]&^dmask != 0 {
			return nil, fmt.Errorf("ctree: cell %d has position bits beyond axis %d", r, d-1)
		}
		if t.n[r] < 1 {
			return nil, fmt.Errorf("ctree: cell %d stores a non-positive count %d (empty cells are never stored)", r, t.n[r])
		}
		t.linkChild(par, Ref(r))
	}
	return t, nil
}

// adoptColumns installs the state columns into the fresh tree, taking
// the slices over when their capacities already match the canonical
// arena sizing and copying into canonically sized slabs otherwise. The
// linkage columns are allocated zeroed at the same capacity.
func (t *Tree) adoptColumns(c Columns, rows int) {
	capRows := ArenaCapFor(rows)
	if cap(c.Loc) == capRows {
		t.loc = c.Loc
	} else {
		t.loc = append(make([]uint64, 0, capRows), c.Loc...)
	}
	if cap(c.N) == capRows {
		t.n = c.N
	} else {
		t.n = append(make([]int32, 0, capRows), c.N...)
	}
	if cap(c.Used) == capRows {
		t.used = c.Used
	} else {
		t.used = append(make([]bool, 0, capRows), c.Used...)
	}
	if cap(c.Level) == capRows {
		t.level = c.Level
	} else {
		t.level = append(make([]uint8, 0, capRows), c.Level...)
	}
	if cap(c.Parent) == capRows {
		t.parent = c.Parent
	} else {
		t.parent = append(make([]Ref, 0, capRows), c.Parent...)
	}
	if cap(c.P) == capRows*t.D {
		t.p = c.P
	} else {
		t.p = append(make([]int32, 0, capRows*t.D), c.P...)
	}
	nilRefs := func() []Ref {
		s := make([]Ref, rows, capRows)
		for i := range s {
			s[i] = NilRef
		}
		return s
	}
	t.firstChild = nilRefs()
	t.lastChild = nilRefs()
	t.nextSib = nilRefs()
	t.childCount = make([]int32, rows, capRows)
	t.childTab = make([]int32, rows, capRows)
	for i := range t.childTab {
		t.childTab[i] = -1
	}
}

// Equal reports whether two trees store exactly the same cells with
// the same counts, half-space counters and usedCell flags (iteration
// order and build statistics are ignored — a serial build, a sharded
// merge, an external spill-and-merge build and a snapshot load of the
// same dataset are all Equal).
func Equal(a, b *Tree) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.D != b.D || a.H != b.H || a.Eta != b.Eta || a.CellCount() != b.CellCount() {
		return false
	}
	equal := true
	for h := 1; h <= a.H-1 && equal; h++ {
		a.WalkLevel(h, func(p Path, ra Ref) {
			if !equal {
				return
			}
			rb := b.CellAt(p)
			if rb == NilRef || a.N(ra) != b.N(rb) || a.Used(ra) != b.Used(rb) {
				equal = false
				return
			}
			for j := 0; j < a.D; j++ {
				if a.P(ra, j) != b.P(rb, j) {
					equal = false
					return
				}
			}
		})
	}
	return equal
}
