package ctree

import (
	"fmt"
	"runtime"
	"testing"

	"mrcc/internal/synthetic"
)

// BenchmarkTreeBuild isolates phase one (the Counting-tree build) on
// the bench dataset — 15 dims, 10 subspace clusters, 15% noise, seed
// 314, the same generator settings BenchmarkBetaSearch uses — at
// several sizes, serially and at Workers=GOMAXPROCS (the parallel
// sort-and-merge build, which produces the identical tree). It reports
// points/s alongside allocs/op so the build's two acceptance numbers —
// throughput and build-phase allocations — are read off one run:
//
//	go test -bench BenchmarkTreeBuild -run '^$' ./internal/ctree
func BenchmarkTreeBuild(b *testing.B) {
	for _, bc := range []struct {
		points, dims int
	}{
		{10000, 15},
		{100000, 15},
	} {
		ds, _, err := synthetic.Generate(synthetic.Config{
			Dims: bc.dims, Points: bc.points, Clusters: 10, NoiseFrac: 0.15,
			MinClusterDim: 8, MaxClusterDim: 13, Seed: 314,
		})
		if err != nil {
			b.Fatal(err)
		}
		run := func(b *testing.B, workers int) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var tr *Tree
				var err error
				if workers <= 1 {
					tr, err = Build(ds, 4)
				} else {
					tr, err = BuildParallel(ds, 4, workers)
				}
				if err != nil {
					b.Fatal(err)
				}
				if tr.Eta != ds.Len() {
					b.Fatalf("Eta = %d, want %d", tr.Eta, ds.Len())
				}
			}
			b.StopTimer()
			secsPerOp := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(float64(ds.Len())/secsPerOp, "points/s")
		}
		b.Run(fmt.Sprintf("n=%d/d=%d", bc.points, bc.dims), func(b *testing.B) {
			run(b, 1)
		})
		b.Run(fmt.Sprintf("n=%d/d=%d/workers=gomaxprocs", bc.points, bc.dims), func(b *testing.B) {
			run(b, runtime.GOMAXPROCS(0))
		})
	}
}
