package ctree

import (
	"fmt"
	"testing"
)

func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		ds := uniformDataset(b, 10, n, 1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Build(ds, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBuildParallel(b *testing.B) {
	ds := uniformDataset(b, 10, 20000, 1)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BuildParallel(ds, 4, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkInsert(b *testing.B) {
	ds := uniformDataset(b, 10, 10000, 1)
	tr, err := Build(ds, 4)
	if err != nil {
		b.Fatal(err)
	}
	p := ds.Points[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNeighborLookup(b *testing.B) {
	ds := uniformDataset(b, 10, 5000, 1)
	tr, err := Build(ds, 4)
	if err != nil {
		b.Fatal(err)
	}
	var paths []Path
	tr.WalkLevel(2, func(p Path, _ Ref) { paths = append(paths, p.Clone()) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := paths[i%len(paths)]
		for j := 0; j < tr.D; j++ {
			if np, ok := p.Neighbor(j, true); ok {
				tr.CellAt(np)
			}
		}
	}
}

func BenchmarkWalkLevel(b *testing.B) {
	ds := uniformDataset(b, 10, 20000, 1)
	tr, err := Build(ds, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.WalkLevel(3, func(Path, Ref) { count++ })
	}
}
