package ctree

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"
)

func TestRadixSortCombo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := map[string][]uint64{
		"empty":  {},
		"single": {42},
		"equal":  {9, 9, 9, 9, 9},
		"sorted": {1, 2, 3, 4, 5, 6},
		"rev":    {6, 5, 4, 3, 2, 1},
	}
	random := make([]uint64, 5000)
	for i := range random {
		// Mix of full-range and low-bit-only words so some byte lanes
		// are constant (exercising the lane-skip) and some are not.
		if i%3 == 0 {
			random[i] = rng.Uint64()
		} else {
			random[i] = rng.Uint64() & 0x3ffffffffffff
		}
	}
	cases["random"] = random
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			want := slices.Clone(in)
			slices.Sort(want)
			a := slices.Clone(in)
			tmp := make([]uint64, len(a))
			got := radixSortCombo(a, tmp)
			if !slices.Equal(got, want) {
				t.Fatalf("radixSortCombo diverged from slices.Sort\n got %v\nwant %v", got, want)
			}
		})
	}
}

func TestRadixSortPairsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 5000
	key := make([]uint64, n)
	pay := make([]uint64, n)
	for i := range key {
		key[i] = uint64(rng.Intn(97)) << 17 // few distinct keys → long equal runs
		pay[i] = uint64(i)
	}
	type rec struct{ k, p uint64 }
	want := make([]rec, n)
	for i := range want {
		want[i] = rec{key[i], pay[i]}
	}
	sort.SliceStable(want, func(a, b int) bool { return want[a].k < want[b].k })
	sk, sp := radixSortPairs(key, pay, make([]uint64, n), make([]uint64, n))
	for i := 0; i < n; i++ {
		if sk[i] != want[i].k || sp[i] != want[i].p {
			t.Fatalf("pos %d: got (%d,%d), want (%d,%d) — pair sort unstable or wrong",
				i, sk[i], sp[i], want[i].k, want[i].p)
		}
	}
}

// TestQuantizePackedKeyMatchesSlow pins the fused branch-reduced
// quantizer bit-identical to the slow per-level kernel (quantizeLevelH
// + packedPathKey + leafParity) over random points and the boundary
// bit patterns the single-comparison validation must classify exactly:
// ±0.0, the largest float below 1.0, denormals, and every invalid
// shape (1.0, >1, negative, ±Inf, NaN).
func TestQuantizePackedKeyMatchesSlow(t *testing.T) {
	const d, H = 15, 4
	rng := rand.New(rand.NewSource(3))
	check := func(p []float64) {
		t.Helper()
		qi := make([]uint64, d)
		err := quantizeLevelH(p, d, H, qi, 0)
		k, lf, ok := quantizePackedKey(p, d, H, make([]uint64, d))
		if ok != (err == nil) {
			t.Fatalf("point %v: fast ok=%v, slow err=%v — validators disagree", p, ok, err)
		}
		if !ok {
			return
		}
		if wantK := packedPathKey(qi, d, H); k != wantK {
			t.Fatalf("point %v: fast key %#x, slow key %#x", p, k, wantK)
		}
		if wantL := leafParity(qi, d); lf != wantL {
			t.Fatalf("point %v: fast leaf %#x, slow leaf %#x", p, lf, wantL)
		}
	}
	for trial := 0; trial < 2000; trial++ {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		check(p)
	}
	edges := []float64{
		0, math.Copysign(0, -1), 0.5, 0.25, 0.75, 0.9999999999999999,
		math.Nextafter(1, 0), math.SmallestNonzeroFloat64, 1e-300,
		0.125, 0.4999999999999999, 0.5000000000000001,
	}
	bads := []float64{
		1, 1.0000000000000002, 2, -0.5, math.Nextafter(0, -1),
		math.Inf(1), math.Inf(-1), math.NaN(), -1e-300, 1e300,
	}
	base := make([]float64, d)
	for j := range base {
		base[j] = 0.3
	}
	for _, v := range edges {
		for pos := 0; pos < d; pos += 7 {
			p := slices.Clone(base)
			p[pos] = v
			check(p)
		}
	}
	for _, v := range bads {
		for pos := 0; pos < d; pos += 7 {
			p := slices.Clone(base)
			p[pos] = v
			check(p)
		}
	}
}

// TestQuantizeKeyWordsMatchesSlow is the multi-word-layout twin
// (d·(H-1) > 64 forces the per-level word path).
func TestQuantizeKeyWordsMatchesSlow(t *testing.T) {
	const d, H = 20, 5 // 20·4 = 80 key bits
	rng := rand.New(rand.NewSource(5))
	qi := make([]uint64, d)
	wantKW := make([]uint64, H-1)
	kw := make([]uint64, H-1)
	for trial := 0; trial < 1000; trial++ {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		if err := quantizeLevelH(p, d, H, qi, 0); err != nil {
			t.Fatal(err)
		}
		pathKeyWords(qi, d, H, wantKW)
		lf, ok := quantizeKeyWords(p, d, H, kw, make([]uint64, d))
		if !ok {
			t.Fatalf("valid point rejected: %v", p)
		}
		if !slices.Equal(kw, wantKW) {
			t.Fatalf("key words diverged: got %v want %v", kw, wantKW)
		}
		if want := leafParity(qi, d); lf != want {
			t.Fatalf("leaf parity diverged: got %#x want %#x", lf, want)
		}
	}
	p := make([]float64, d)
	p[d-1] = math.NaN()
	if _, ok := quantizeKeyWords(p, d, H, kw, qi); ok {
		t.Fatal("NaN accepted by multi-word quantizer")
	}
}

// TestBatchLayoutsMatchPerPointInsert forces each of the three chunk
// sort layouts — combo (key+index in one word), pair radix (packed key
// whose combo word would overflow), multi-word comparison fallback —
// and pins the resulting tree cell-identical to per-point insertion.
func TestBatchLayoutsMatchPerPointInsert(t *testing.T) {
	cases := []struct {
		name   string
		d, H   int
		layout string
	}{
		// 5·3 = 15 key bits + 13 index bits: combo.
		{"combo_d5_H4", 5, 4, "combo"},
		// 19·3 = 57 key bits + 13 index bits = 70 > 64: pair radix.
		{"pairs_d19_H4", 19, 4, "pairs"},
		// 15·5 = 75 key bits > 64: multi-word fallback.
		{"multiword_d15_H6", 15, 6, "multiword"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := 9000 // > buildReportEvery so at least one full chunk sorts
			ds := uniformDataset(t, tc.d, n, 42)
			// Duplicate a block of points so equal keys actually occur
			// and the tie-break/stability paths are exercised.
			for i := 0; i < 500; i++ {
				ds.Points[n-1-i] = ds.Points[i]
			}
			batched, err := Build(ds, tc.H)
			if err != nil {
				t.Fatal(err)
			}
			perPoint := New(tc.d, tc.H)
			for _, p := range ds.Points {
				if err := perPoint.Insert(p); err != nil {
					t.Fatal(err)
				}
			}
			if !treesEqual(t, batched, perPoint) {
				t.Fatal("batched build diverged from per-point insertion")
			}
			wantRadix := tc.layout != "multiword"
			if got := batched.RadixChunks() > 0; got != wantRadix {
				t.Fatalf("RadixChunks = %d, want >0 == %v for layout %s",
					batched.RadixChunks(), wantRadix, tc.layout)
			}
			if perPoint.RadixChunks() != 0 {
				t.Fatalf("per-point build counted %d radix chunks, want 0", perPoint.RadixChunks())
			}
		})
	}
}

// TestBatchInsertErrorMessagesUnchanged pins the chunked fast path to
// the historical per-point error text: the fused validator flags the
// chunk, the slow validator re-derives the exact message.
func TestBatchInsertErrorMessagesUnchanged(t *testing.T) {
	d := 5
	ds := uniformDataset(t, d, 50, 9)
	ds.Points[17][3] = 1.25
	_, err := Build(ds, 4)
	if err == nil {
		t.Fatal("invalid point accepted")
	}
	want := "ctree: point 17: ctree: axis 3 value 1.25 outside [0,1): dataset must be normalized"
	if err.Error() != want {
		t.Fatalf("error text changed:\n got %q\nwant %q", err, want)
	}
	ds.Points[17] = ds.Points[0]
	ds.Points[33] = []float64{0.1, 0.2}
	_, err = Build(ds, 4)
	if err == nil {
		t.Fatal("short point accepted")
	}
	want = "ctree: point 33: ctree: point has 2 values, want 5"
	if err.Error() != want {
		t.Fatalf("error text changed:\n got %q\nwant %q", err, want)
	}
}

// TestHashLocDistributes sanity-checks the fmix64 probe hash: distinct
// small Loc words (the common case — d <= 20 means loc < 2^20) must not
// collapse onto few slots of a power-of-two table.
func TestHashLocDistributes(t *testing.T) {
	const tableBits = 10
	mask := uint64(1<<tableBits - 1)
	seen := make(map[uint64]int)
	for loc := uint64(0); loc < 1<<tableBits; loc++ {
		seen[hashLoc(loc)&mask]++
	}
	maxLoad := 0
	for _, c := range seen {
		if c > maxLoad {
			maxLoad = c
		}
	}
	if len(seen) < (1<<tableBits)/2 {
		t.Fatalf("hashLoc maps 2^%d consecutive locs onto only %d of %d slots", tableBits, len(seen), 1<<tableBits)
	}
	if maxLoad > 8 {
		t.Fatalf("hashLoc piles %d consecutive locs onto one slot", maxLoad)
	}
}

// BenchmarkQuantize measures the fused branch-reduced quantize+pack
// kernel against the slow per-level kernel it bypasses, over one
// build-sized chunk (points/s is the chunk's points per wall second).
func BenchmarkQuantize(b *testing.B) {
	const d, H, m = 15, 4, 8192
	pts := uniformDataset(b, d, m, 1).Points
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		qi := make([]uint64, d)
		var sink uint64
		for i := 0; i < b.N; i++ {
			for _, p := range pts {
				k, lf, ok := quantizePackedKey(p, d, H, qi)
				if !ok {
					b.Fatal("rejected valid point")
				}
				sink ^= k + lf
			}
		}
		b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		_ = sink
	})
	b.Run("slow", func(b *testing.B) {
		b.ReportAllocs()
		qi := make([]uint64, d)
		var sink uint64
		for i := 0; i < b.N; i++ {
			for _, p := range pts {
				if err := quantizeLevelH(p, d, H, qi, 0); err != nil {
					b.Fatal(err)
				}
				sink ^= packedPathKey(qi, d, H) + leafParity(qi, d)
			}
		}
		b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		_ = sink
	})
}

// BenchmarkMortonSort measures the LSD radix combo sort against the
// generic comparison sort it replaced, on one build-sized chunk of
// 58-bit combo words (45-bit key + 13-bit index, the d=15 H=4 shape).
func BenchmarkMortonSort(b *testing.B) {
	const m = 8192
	rng := rand.New(rand.NewSource(2))
	orig := make([]uint64, m)
	for i := range orig {
		orig[i] = (rng.Uint64() & (1<<45 - 1)) << 13
	}
	for i := range orig {
		orig[i] |= uint64(i)
	}
	b.Run("radix", func(b *testing.B) {
		b.ReportAllocs()
		a := make([]uint64, m)
		tmp := make([]uint64, m)
		for i := 0; i < b.N; i++ {
			copy(a, orig)
			radixSortCombo(a, tmp)
		}
		b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	})
	b.Run("stdsort", func(b *testing.B) {
		b.ReportAllocs()
		a := make([]uint64, m)
		for i := 0; i < b.N; i++ {
			copy(a, orig)
			slices.Sort(a)
		}
		b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	})
}
