// LSD radix sorting of packed path keys — the build's Morton sort
// (DESIGN.md §12).
//
// The sorted batch insertion (batch.go) and the merged-stream parallel
// build (robust.go) both order points by their packed root-to-leaf path
// key before counting. The keys are dense unsigned integers (d·(H-1)
// bits for the single-word layout), which makes an LSD counting sort
// strictly cheaper than comparison sorting: one histogram pass over all
// eight byte lanes, then one scatter pass per byte lane that actually
// varies. Constant lanes — the top bytes of a 45-bit key, or any lane
// the chunk's keys happen to agree on — are skipped outright, so a
// 15-dim H=4 chunk pays ~6 scatter passes instead of an O(m·log m)
// comparison sort with an interface or closure call per comparison.
//
// Two layouts cover every key shape:
//
//   - radixSortCombo sorts one word per point that packs (key << idxBits
//     | original index). Sorting the combined word yields exactly the
//     (key asc, index asc) total order the batch inserter needs, with
//     the tie-break for free. It applies whenever keyBits + idxBits
//     <= 64 — every chunk of the default build (45-bit key, 13-bit
//     chunk index).
//   - radixSortPairs sorts a key column with one uint64 payload column
//     riding along (the level-H parity word of the merged-stream build,
//     or an index column when the combo word would overflow). LSD
//     counting passes are stable, so equal keys keep their arrival
//     order — the same tie-break, encoded positionally.
//
// Multi-word keys (d·(H-1) > 64) fall back to slices.SortFunc over the
// permutation with a lexicographic word comparison (batch.go); the
// radix kernels are deliberately single-word.
package ctree

// radixSortCombo sorts a ascending in place (ping-ponging with tmp,
// which must have the same length) and returns the slice that holds
// the sorted data — a or tmp, depending on how many byte lanes varied.
// The caller keeps both slices alive and reads the returned one.
func radixSortCombo(a, tmp []uint64) []uint64 {
	n := len(a)
	if n < 2 {
		return a
	}
	// One pass over the data builds all eight byte-lane histograms;
	// lane counts are permutation-invariant, so the histograms stay
	// valid across scatter passes.
	var hist [8][256]int32
	for _, v := range a {
		hist[0][v&0xff]++
		hist[1][(v>>8)&0xff]++
		hist[2][(v>>16)&0xff]++
		hist[3][(v>>24)&0xff]++
		hist[4][(v>>32)&0xff]++
		hist[5][(v>>40)&0xff]++
		hist[6][(v>>48)&0xff]++
		hist[7][v>>56]++
	}
	src, dst := a, tmp
	for lane := 0; lane < 8; lane++ {
		h := &hist[lane]
		shift := uint(8 * lane)
		// A lane where every key agrees (all counts in one bucket)
		// permutes nothing; skip the scatter pass. Probing the bucket of
		// any element works because lane counts ignore order.
		if int(h[(src[0]>>shift)&0xff]) == n {
			continue
		}
		var pos [256]int32
		var sum int32
		for b := 0; b < 256; b++ {
			pos[b] = sum
			sum += h[b]
		}
		for _, v := range src {
			b := (v >> shift) & 0xff
			dst[pos[b]] = v
			pos[b]++
		}
		src, dst = dst, src
	}
	return src
}

// radixSortPairs stable-sorts the key column ascending, carrying the
// payload column along (payload[i] stays attached to key[i]). keyTmp
// and payTmp are same-length scratch. Equal keys keep their input
// order — LSD counting passes are stable — which is how callers encode
// the original-index tie-break positionally. Returns the slices that
// hold the sorted columns.
func radixSortPairs(key, payload, keyTmp, payTmp []uint64) (sortedKey, sortedPayload []uint64) {
	n := len(key)
	if n < 2 {
		return key, payload
	}
	var hist [8][256]int32
	for _, v := range key {
		hist[0][v&0xff]++
		hist[1][(v>>8)&0xff]++
		hist[2][(v>>16)&0xff]++
		hist[3][(v>>24)&0xff]++
		hist[4][(v>>32)&0xff]++
		hist[5][(v>>40)&0xff]++
		hist[6][(v>>48)&0xff]++
		hist[7][v>>56]++
	}
	srcK, dstK := key, keyTmp
	srcP, dstP := payload, payTmp
	for lane := 0; lane < 8; lane++ {
		h := &hist[lane]
		shift := uint(8 * lane)
		if int(h[(srcK[0]>>shift)&0xff]) == n {
			continue
		}
		var pos [256]int32
		var sum int32
		for b := 0; b < 256; b++ {
			pos[b] = sum
			sum += h[b]
		}
		for i, v := range srcK {
			b := (v >> shift) & 0xff
			p := pos[b]
			dstK[p] = v
			dstP[p] = srcP[i]
			pos[b] = p + 1
		}
		srcK, dstK = dstK, srcK
		srcP, dstP = dstP, srcP
	}
	return srcK, srcP
}
