package ctree

import (
	"errors"
	"math/rand"
	"testing"

	"mrcc/internal/dataset"
)

// shardDatasets splits ds into w contiguous shards (the partitioning
// the coordinator uses), dropping none.
func shardDatasets(t *testing.T, ds *dataset.Dataset, w int) []*dataset.Dataset {
	t.Helper()
	shards := make([]*dataset.Dataset, 0, w)
	n := len(ds.Points)
	for i := 0; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		s := dataset.New(ds.Dims, hi-lo)
		for _, p := range ds.Points[lo:hi] {
			s.Append(p)
		}
		shards = append(shards, s)
	}
	return shards
}

func buildShardTrees(t *testing.T, shards []*dataset.Dataset, h int) []*Tree {
	t.Helper()
	trees := make([]*Tree, len(shards))
	for i, s := range shards {
		tr, err := Build(s, h)
		if err != nil {
			t.Fatalf("shard %d build: %v", i, err)
		}
		trees[i] = tr
	}
	return trees
}

func TestMergeTournamentMatchesSerial(t *testing.T) {
	ds := uniformDataset(t, 5, 4000, 77)
	serial, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantRounds := map[int]int{1: 0, 2: 1, 4: 2, 8: 3}
	for _, w := range []int{1, 2, 4, 8} {
		trees := buildShardTrees(t, shardDatasets(t, ds, w), 4)
		merged, rounds, err := MergeTournament(trees, 2, nil)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if rounds != wantRounds[w] {
			t.Errorf("w=%d: %d rounds, want %d", w, rounds, wantRounds[w])
		}
		if !Equal(serial, merged) {
			t.Errorf("w=%d: merged tree differs from serial build", w)
		}
		if merged.MemoryBytes() != serial.MemoryBytes() {
			t.Errorf("w=%d: merged MemoryBytes %d != serial %d", w, merged.MemoryBytes(), serial.MemoryBytes())
		}
	}
}

// TestMergeTournamentPermutations pins the order-independence claim
// the tournament relies on: merging the same shard trees in any
// permutation yields Equal trees with identical MemoryBytes.
func TestMergeTournamentPermutations(t *testing.T) {
	ds := uniformDataset(t, 4, 3000, 99)
	for _, w := range []int{2, 3, 7} {
		shards := shardDatasets(t, ds, w)
		ref, _, err := MergeTournament(buildShardTrees(t, shards, 4), 1, nil)
		if err != nil {
			t.Fatalf("w=%d reference merge: %v", w, err)
		}
		rng := rand.New(rand.NewSource(int64(1000 + w)))
		for trial := 0; trial < 4; trial++ {
			trees := buildShardTrees(t, shards, 4)
			rng.Shuffle(len(trees), func(i, j int) { trees[i], trees[j] = trees[j], trees[i] })
			merged, _, err := MergeTournament(trees, 3, nil)
			if err != nil {
				t.Fatalf("w=%d trial %d: %v", w, trial, err)
			}
			if !Equal(ref, merged) {
				t.Errorf("w=%d trial %d: permuted merge differs", w, trial)
			}
			if merged.MemoryBytes() != ref.MemoryBytes() {
				t.Errorf("w=%d trial %d: MemoryBytes %d != %d", w, trial, merged.MemoryBytes(), ref.MemoryBytes())
			}
		}
	}
}

// TestCanonicalizeMatchesSingleChunkBuild pins the canonical-order
// claim: a single-chunk serial build (η <= buildReportEvery) creates
// cells in exactly the canonical DFS preorder, so Canonicalize leaves
// it untouched and rewrites a tournament merge into the identical
// arena layout, row for row.
func TestCanonicalizeMatchesSingleChunkBuild(t *testing.T) {
	ds := uniformDataset(t, 6, 5000, 42)
	if len(ds.Points) > buildReportEvery {
		t.Fatalf("test dataset must fit one build chunk (%d points)", buildReportEvery)
	}
	serial, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := Canonicalize(serial); err != nil || got != serial {
		t.Fatalf("single-chunk build not recognized as canonical (err=%v)", err)
	}
	merged, _, err := MergeTournament(buildShardTrees(t, shardDatasets(t, ds, 4), 4), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := Canonicalize(merged)
	if err != nil {
		t.Fatal(err)
	}
	a, b := serial.Columns(), canon.Columns()
	if a.Rows() != b.Rows() {
		t.Fatalf("row counts differ: %d vs %d", a.Rows(), b.Rows())
	}
	for r := 0; r < a.Rows(); r++ {
		if a.Loc[r] != b.Loc[r] || a.N[r] != b.N[r] || a.Used[r] != b.Used[r] ||
			a.Level[r] != b.Level[r] || a.Parent[r] != b.Parent[r] {
			t.Fatalf("row %d differs between single-chunk build and canonicalized merge", r)
		}
	}
	for i := range a.P {
		if a.P[i] != b.P[i] {
			t.Fatalf("half-space slab differs at %d", i)
		}
	}
	if canon.MemoryBytes() != serial.MemoryBytes() {
		t.Fatalf("canonicalized MemoryBytes %d != serial %d", canon.MemoryBytes(), serial.MemoryBytes())
	}
}

// TestCanonicalizeMultiChunk checks that canonicalizing a multi-chunk
// serial build and a tournament merge of the same dataset land on the
// same arena layout (neither input order is canonical on its own).
func TestCanonicalizeMultiChunk(t *testing.T) {
	ds := uniformDataset(t, 4, 3*buildReportEvery+100, 7)
	serial, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	merged, _, err := MergeTournament(buildShardTrees(t, shardDatasets(t, ds, 3), 4), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := Canonicalize(serial)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Canonicalize(merged)
	if err != nil {
		t.Fatal(err)
	}
	a, b := ca.Columns(), cb.Columns()
	if a.Rows() != b.Rows() {
		t.Fatalf("row counts differ: %d vs %d", a.Rows(), b.Rows())
	}
	for r := 0; r < a.Rows(); r++ {
		if a.Loc[r] != b.Loc[r] || a.N[r] != b.N[r] || a.Level[r] != b.Level[r] || a.Parent[r] != b.Parent[r] {
			t.Fatalf("row %d differs between canonicalized serial and merge", r)
		}
	}
	if !Equal(ca, serial) {
		t.Fatal("canonicalization changed the cell set")
	}
	if ca.MemoryBytes() != serial.MemoryBytes() {
		t.Fatal("canonicalization changed MemoryBytes")
	}
}

func TestMergeTournamentCheckAborts(t *testing.T) {
	ds := uniformDataset(t, 3, 1200, 5)
	trees := buildShardTrees(t, shardDatasets(t, ds, 4), 4)
	boom := errors.New("abort")
	calls := 0
	_, _, err := MergeTournament(trees, 1, func() error {
		calls++
		if calls > 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the check's error", err)
	}
}

func TestMergeTournamentRejectsBadInput(t *testing.T) {
	if _, _, err := MergeTournament(nil, 1, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := MergeTournament([]*Tree{New(3, 4), nil}, 1, nil); err == nil {
		t.Error("nil tree accepted")
	}
}

func TestNewFromColumnsTrustedMatchesValidated(t *testing.T) {
	ds := uniformDataset(t, 5, 2500, 21)
	tr, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Columns()
	clone := func() Columns {
		return Columns{
			Loc:    append([]uint64(nil), c.Loc...),
			N:      append([]int32(nil), c.N...),
			Used:   append([]bool(nil), c.Used...),
			Level:  append([]uint8(nil), c.Level...),
			Parent: append([]Ref(nil), c.Parent...),
			P:      append([]int32(nil), c.P...),
		}
	}
	validated, err := NewFromColumns(tr.D, tr.H, tr.Eta, clone())
	if err != nil {
		t.Fatal(err)
	}
	trusted, err := NewFromColumnsTrusted(tr.D, tr.H, tr.Eta, clone())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(validated, trusted) || !Equal(tr, trusted) {
		t.Fatal("trusted assembly differs from validated assembly")
	}
	if validated.MemoryBytes() != trusted.MemoryBytes() {
		t.Fatal("trusted assembly changed MemoryBytes")
	}
	// The safety checks stay on: broken linkage is still refused.
	bad := clone()
	bad.Parent[len(bad.Parent)-1] = Ref(len(bad.Parent)) // forward reference
	if _, err := NewFromColumnsTrusted(tr.D, tr.H, tr.Eta, bad); err == nil {
		t.Fatal("forward parent ref accepted by trusted assembly")
	}
}
