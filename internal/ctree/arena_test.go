package ctree

import (
	"math/rand"
	"testing"

	"mrcc/internal/dataset"
)

// TestMergeForcesArenaGrowMidWalk merges a large shard into a tree
// whose arena is still at (or near) its initial capacity, so the slab
// walk must reallocate every column several times while dstOf mappings
// for already-visited cells are live. The merged tree must equal the
// whole build cell-for-cell, and the growth events must be visible in
// the ArenaGrows counter.
func TestMergeForcesArenaGrowMidWalk(t *testing.T) {
	d, h := 6, 4
	small := uniformDataset(t, d, 8, 41)
	big := uniformDataset(t, d, 4000, 42)
	dst, err := Build(small, h)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Build(big, h)
	if err != nil {
		t.Fatal(err)
	}
	growsBefore := dst.ArenaGrows()
	if err := dst.MergeFrom(src); err != nil {
		t.Fatal(err)
	}
	// src stores thousands of cells; dst started with at most a few
	// dozen, so the merge walk itself must have grown the arena.
	if dst.ArenaGrows() <= growsBefore {
		t.Fatalf("merge of %d cells into a %d-cell tree grew the arena %d -> %d times; expected growth mid-walk",
			src.CellCount(), 8, growsBefore, dst.ArenaGrows())
	}
	all := &dataset.Dataset{Dims: d, Points: append(append([][]float64{}, small.Points...), big.Points...)}
	whole, err := Build(all, h)
	if err != nil {
		t.Fatal(err)
	}
	if !treesEqual(t, whole, dst) {
		t.Fatal("merge that grew the arena mid-walk diverged from the whole build")
	}
}

// TestMergeSingleCellShard merges a shard holding exactly one stored
// cell chain (one point) into a populated tree — the smallest non-empty
// shard BuildParallel can produce.
func TestMergeSingleCellShard(t *testing.T) {
	ds := uniformDataset(t, 4, 500, 43)
	one := &dataset.Dataset{Dims: 4, Points: [][]float64{{0.9, 0.1, 0.5, 0.3}}}
	dst, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := Build(one, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := shard.CellCount(); got != int64(shard.H-1) {
		t.Fatalf("one-point shard stores %d cells, want one per stored level (%d)", got, shard.H-1)
	}
	if err := dst.MergeFrom(shard); err != nil {
		t.Fatal(err)
	}
	all := &dataset.Dataset{Dims: 4, Points: append(append([][]float64{}, ds.Points...), one.Points...)}
	whole, err := Build(all, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !treesEqual(t, whole, dst) {
		t.Fatal("single-cell shard merge diverged from the whole build")
	}
}

// TestBatchBuildEqualsPerPointInsert pins the sorted batch inserter
// against the per-point descent on layouts chosen to stress its run
// detection: heavy duplicates, dense single-cell clumps, and a random
// mix — including a duplicate run that straddles a sort-chunk boundary.
func TestBatchBuildEqualsPerPointInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	d := 5
	var pts [][]float64
	// Random spread.
	for i := 0; i < 3000; i++ {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts = append(pts, p)
	}
	// A duplicate block sized to straddle the buildReportEvery chunk
	// boundary: identical points land in one run per chunk.
	dup := []float64{0.31, 0.62, 0.93, 0.12, 0.44}
	for len(pts) < buildReportEvery+2000 {
		pts = append(pts, dup)
	}
	// A dense clump inside one deep cell (distinct but co-located).
	for i := 0; i < 500; i++ {
		p := make([]float64, d)
		for j := range p {
			p[j] = 0.7001 + rng.Float64()*1e-6
		}
		pts = append(pts, p)
	}
	ds := &dataset.Dataset{Dims: d, Points: pts}
	batch, err := Build(ds, 5)
	if err != nil {
		t.Fatal(err)
	}
	perPoint := New(d, 5)
	for i, p := range ds.Points {
		if err := perPoint.Insert(p); err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
	}
	if !treesEqual(t, batch, perPoint) {
		t.Fatal("sorted batch build diverged from per-point insertion")
	}
	runs, runPoints := batch.BatchRuns()
	if runPoints != int64(len(pts)) {
		t.Fatalf("BatchRuns covered %d points, want %d (no point may bypass the batch path)", runPoints, len(pts))
	}
	if runs >= runPoints {
		t.Fatalf("runs=%d points=%d: duplicate-heavy layout produced no batching at all", runs, runPoints)
	}
}

// TestBatchRunsOnIdenticalPoints pins the batch accounting on the
// degenerate all-identical dataset: each sort chunk collapses to
// exactly one run.
func TestBatchRunsOnIdenticalPoints(t *testing.T) {
	n := 2*buildReportEvery + 100
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{0.25, 0.75, 0.5}
	}
	tr, err := Build(&dataset.Dataset{Dims: 3, Points: pts}, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantRuns := int64((n + buildReportEvery - 1) / buildReportEvery)
	runs, runPoints := tr.BatchRuns()
	if runs != wantRuns || runPoints != int64(n) {
		t.Fatalf("BatchRuns = (%d, %d), want (%d, %d)", runs, runPoints, wantRuns, n)
	}
	if tr.Eta != n {
		t.Fatalf("Eta = %d, want %d", tr.Eta, n)
	}
	if got := tr.CellCount(); got != int64(tr.H-1) {
		t.Fatalf("identical points stored %d cells, want %d", got, tr.H-1)
	}
}

// TestWideFanOutUsesChildTable drives a node past the inline-sibling
// threshold (8 children) so lookups go through the open-addressing
// child table, and pins both the structure (every walked path resolves
// through CellAt) and equality with per-point insertion.
func TestWideFanOutUsesChildTable(t *testing.T) {
	d := 5 // the root can fan out to 2^5 = 32 children
	rng := rand.New(rand.NewSource(45))
	var pts [][]float64
	// One point per level-1 cell: all 32 root children exist.
	for loc := 0; loc < 1<<d; loc++ {
		p := make([]float64, d)
		for j := 0; j < d; j++ {
			base := 0.0
			if (loc>>j)&1 == 1 {
				base = 0.5
			}
			p[j] = base + 0.25 + rng.Float64()*0.1
		}
		pts = append(pts, p)
	}
	// Plus random filler to widen deeper levels too.
	for i := 0; i < 2000; i++ {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts = append(pts, p)
	}
	ds := &dataset.Dataset{Dims: d, Points: pts}
	tr, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.LevelCellCount(1); got != 1<<d {
		t.Fatalf("level 1 stores %d cells, want the full fan-out %d", got, 1<<d)
	}
	wide := false
	tr.WalkLevel(1, func(p Path, c Ref) {
		if tr.ChildCount(c) > inlineChildren {
			wide = true
		}
	})
	if !wide && 1<<d <= inlineChildren {
		t.Fatal("test layout never exceeded the inline-children threshold")
	}
	// Every stored path must resolve through the (table-backed) lookup.
	for h := 1; h <= tr.H-1; h++ {
		tr.WalkLevel(h, func(p Path, c Ref) {
			if got := tr.CellAt(p); got != c {
				t.Fatalf("level %d: CellAt(%v) = %d, want %d", h, p, got, c)
			}
		})
	}
	perPoint := New(d, 4)
	for _, p := range ds.Points {
		if err := perPoint.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if !treesEqual(t, tr, perPoint) {
		t.Fatal("wide fan-out batch build diverged from per-point insertion")
	}
}
