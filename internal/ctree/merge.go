package ctree

import (
	"fmt"
	"math"

	"mrcc/internal/dataset"
)

// Insert counts one additional point (in [0,1)^d) into the tree,
// exactly as Build's batched scan does. The clustering phase can then
// be re-run over the updated tree, which is how a downstream system
// keeps clusters fresh while data streams in (InsertBatch amortizes
// the descent over sorted chunks when points arrive in batches).
//
// Insert refuses to count past MaxPoints: the N and P counters are
// int32 and the counts would otherwise silently wrap.
func (t *Tree) Insert(p []float64) error {
	if len(p) != t.D {
		return fmt.Errorf("ctree: point has %d values, want %d", len(p), t.D)
	}
	if t.Eta >= MaxPoints {
		return fmt.Errorf("ctree: tree already counts %d points, the int32 cell-counter maximum (MaxPoints); shard larger datasets into separate trees", t.Eta)
	}
	// Validate and quantize every axis once at level H before touching
	// the tree; per-level locs are bit slices of the level-H coordinate
	// (bit-exact with locAtLevel, see batch.go).
	var qs [MaxDims]uint64
	scale := float64(uint64(1) << uint(t.H))
	for j, v := range p {
		if v < 0 || v >= 1 || math.IsNaN(v) {
			return fmt.Errorf("ctree: axis %d value %g outside [0,1): dataset must be normalized", j, v)
		}
		qs[j] = uint64(v * scale)
	}
	t.invalidateIndexes()
	cur := rootRef
	prev := NilRef
	for h := 1; h <= t.H-1; h++ {
		var loc uint64
		for j := 0; j < t.D; j++ {
			loc |= ((qs[j] >> uint(t.H-h)) & 1) << uint(j)
		}
		c, _ := t.ensureChild(cur, loc)
		t.n[c]++
		if prev >= 0 {
			popcountLower(t.PRow(prev), loc, t.dmask)
		}
		cur, prev = c, c
	}
	var leaf uint64
	for j := 0; j < t.D; j++ {
		leaf |= (qs[j] & 1) << uint(j)
	}
	popcountLower(t.PRow(prev), leaf, t.dmask)
	t.Eta++
	return nil
}

// MergeFrom adds every count of other into t. Both trees must have the
// same dimensionality and resolution count. other is left untouched;
// use it to combine trees built over shards of one dataset.
//
// The merge is a single linear walk over the source arena instead of a
// recursive pointer merge: a source cell's parent always has a smaller
// Ref (parents are stored before their children), so one pass in Ref
// order can map every source cell to its destination cell (creating it
// when absent) and fold the N and half-space columns in cache order.
//
// MergeFrom refuses a merge whose combined point count would exceed
// MaxPoints: every cell counter is int32 and the root cells (which
// count all η points of their subtree) would wrap first. t is left
// unmodified when an error is returned.
func (t *Tree) MergeFrom(other *Tree) error {
	if other == nil {
		return nil
	}
	if t.D != other.D || t.H != other.H {
		return fmt.Errorf("ctree: cannot merge (d=%d, H=%d) with (d=%d, H=%d)",
			t.D, t.H, other.D, other.H)
	}
	if int64(t.Eta)+int64(other.Eta) > int64(MaxPoints) {
		return fmt.Errorf("ctree: merging %d + %d points exceeds the int32 cell-counter maximum %d (MaxPoints); shard into separate trees",
			t.Eta, other.Eta, int64(MaxPoints))
	}
	t.invalidateIndexes()
	d := t.D
	// dstOf[src Ref] = matching dst Ref; the root sentinel maps to the
	// root sentinel, and every cell's parent is resolved before the
	// cell itself because parent Refs are strictly smaller.
	dstOf := make([]Ref, len(other.loc))
	dstOf[rootRef] = rootRef
	for sr := int(rootRef) + 1; sr < len(other.loc); sr++ {
		dp := dstOf[other.parent[sr]]
		dr, _ := t.ensureChild(dp, other.loc[sr])
		dstOf[sr] = dr
		t.n[dr] += other.n[sr]
		srow := other.p[sr*d : sr*d+d]
		drow := t.p[int(dr)*d : int(dr)*d+d]
		for j := 0; j < d; j++ {
			drow[j] += srow[j]
		}
	}
	t.Eta += other.Eta
	// Fold the shard's build statistics so the merged root reports
	// build-wide totals to the observability layer.
	t.grows += other.grows
	t.runs += other.runs
	t.runPoints += other.runPoints
	t.radixChunks += other.radixChunks
	return nil
}

// ProgressFunc reports build progress: done of total points have been
// counted into the tree. Shard goroutines may invoke it concurrently;
// BuildParallelProgress callers that need serialization must provide it
// (the obs.Collector does).
type ProgressFunc func(done, total int)

// BuildParallel builds the Counting-tree with `workers` goroutines, each
// counting a shard of the dataset into a private tree, then merging.
// It produces exactly the same counts as Build (cell iteration order may
// differ, but the clustering phase's deterministic tie-break makes the
// final clustering identical). workers <= 0 selects GOMAXPROCS.
func BuildParallel(ds *dataset.Dataset, H, workers int) (*Tree, error) {
	return BuildParallelProgress(ds, H, workers, nil)
}

// BuildParallelProgress is BuildParallel with an optional progress
// callback, invoked with the cumulative insertion count roughly every
// few thousand points. A nil progress adds no overhead.
func BuildParallelProgress(ds *dataset.Dataset, H, workers int, progress ProgressFunc) (*Tree, error) {
	return BuildParallelOpts(ds, H, BuildOptions{Workers: workers, Progress: progress})
}
