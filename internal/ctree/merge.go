package ctree

import (
	"fmt"

	"mrcc/internal/dataset"
)

// Insert counts one additional point (in [0,1)^d) into the tree,
// exactly as Build's single scan does. The clustering phase can then be
// re-run over the updated tree (after ResetUsed), which is how a
// downstream system keeps clusters fresh while data streams in.
//
// Insert refuses to count past MaxPoints: Cell.N and Cell.P are int32
// and the counts would otherwise silently wrap.
func (t *Tree) Insert(p []float64) error {
	if len(p) != t.D {
		return fmt.Errorf("ctree: point has %d values, want %d", len(p), t.D)
	}
	if t.Eta >= MaxPoints {
		return fmt.Errorf("ctree: tree already counts %d points, the int32 cell-counter maximum (MaxPoints); shard larger datasets into separate trees", t.Eta)
	}
	t.invalidateIndexes()
	node := t.Root
	var prev *Cell
	for h := 1; h <= t.H-1; h++ {
		loc, err := locAtLevel(p, h)
		if err != nil {
			return fmt.Errorf("ctree: %w", err)
		}
		c, created := node.ensure(loc, t.D)
		if created {
			t.cells++
		}
		c.N++
		if prev != nil {
			for j := 0; j < t.D; j++ {
				if loc&(1<<uint(j)) == 0 {
					prev.P[j]++
				}
			}
		}
		if h < t.H-1 {
			if c.Children == nil {
				c.Children = newNode()
			}
			node = c.Children
		}
		prev = c
	}
	loc, err := locAtLevel(p, t.H)
	if err != nil {
		return fmt.Errorf("ctree: %w", err)
	}
	for j := 0; j < t.D; j++ {
		if loc&(1<<uint(j)) == 0 {
			prev.P[j]++
		}
	}
	t.Eta++
	return nil
}

// MergeFrom adds every count of other into t. Both trees must have the
// same dimensionality and resolution count. other is left untouched;
// use it to combine trees built over shards of one dataset.
//
// MergeFrom refuses a merge whose combined point count would exceed
// MaxPoints: every cell counter is int32 and the root cells (which
// count all η points of their subtree) would wrap first. t is left
// unmodified when an error is returned.
func (t *Tree) MergeFrom(other *Tree) error {
	if other == nil {
		return nil
	}
	if t.D != other.D || t.H != other.H {
		return fmt.Errorf("ctree: cannot merge (d=%d, H=%d) with (d=%d, H=%d)",
			t.D, t.H, other.D, other.H)
	}
	if int64(t.Eta)+int64(other.Eta) > int64(MaxPoints) {
		return fmt.Errorf("ctree: merging %d + %d points exceeds the int32 cell-counter maximum %d (MaxPoints); shard into separate trees",
			t.Eta, other.Eta, int64(MaxPoints))
	}
	t.invalidateIndexes()
	mergeNodes(t.Root, other.Root, t.D, &t.cells)
	t.Eta += other.Eta
	return nil
}

func mergeNodes(dst, src *Node, d int, cells *int64) {
	if src == nil {
		return
	}
	for _, sc := range src.Cells {
		dc, created := dst.ensure(sc.Loc, d)
		if created {
			*cells++
		}
		dc.N += sc.N
		for j := 0; j < d; j++ {
			dc.P[j] += sc.P[j]
		}
		if sc.Children != nil {
			if dc.Children == nil {
				dc.Children = newNode()
			}
			mergeNodes(dc.Children, sc.Children, d, cells)
		}
	}
}

// ProgressFunc reports build progress: done of total points have been
// counted into the tree. Shard goroutines may invoke it concurrently;
// BuildParallelProgress callers that need serialization must provide it
// (the obs.Collector does).
type ProgressFunc func(done, total int)

// BuildParallel builds the Counting-tree with `workers` goroutines, each
// counting a shard of the dataset into a private tree, then merging.
// It produces exactly the same counts as Build (cell iteration order may
// differ, but the clustering phase's deterministic tie-break makes the
// final clustering identical). workers <= 0 selects GOMAXPROCS.
func BuildParallel(ds *dataset.Dataset, H, workers int) (*Tree, error) {
	return BuildParallelProgress(ds, H, workers, nil)
}

// BuildParallelProgress is BuildParallel with an optional progress
// callback, invoked with the cumulative insertion count roughly every
// few thousand points. A nil progress adds no overhead.
func BuildParallelProgress(ds *dataset.Dataset, H, workers int, progress ProgressFunc) (*Tree, error) {
	return BuildParallelOpts(ds, H, BuildOptions{Workers: workers, Progress: progress})
}
