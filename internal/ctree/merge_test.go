package ctree

import (
	"testing"

	"mrcc/internal/dataset"
)

// treesEqual compares two trees cell by cell (counts and half-space
// counts), ignoring iteration order.
func treesEqual(t *testing.T, a, b *Tree) bool {
	t.Helper()
	if a.D != b.D || a.H != b.H || a.Eta != b.Eta {
		return false
	}
	equal := true
	for h := 1; h <= a.H-1; h++ {
		a.WalkLevel(h, func(p Path, ca *Cell) {
			cb := b.CellAt(p)
			if cb == nil || ca.N != cb.N {
				equal = false
				return
			}
			for j := 0; j < a.D; j++ {
				if ca.P[j] != cb.P[j] {
					equal = false
					return
				}
			}
		})
		if a.LevelCellCount(h) != b.LevelCellCount(h) {
			equal = false
		}
	}
	return equal
}

func TestInsertMatchesBuild(t *testing.T) {
	ds := uniformDataset(t, 4, 500, 3)
	built, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	incremental := &Tree{D: 4, H: 4, Root: newNode()}
	for _, p := range ds.Points {
		if err := incremental.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if !treesEqual(t, built, incremental) {
		t.Fatal("incremental insertion diverged from Build")
	}
}

func TestInsertValidation(t *testing.T) {
	tr, err := Build(uniformDataset(t, 3, 10, 1), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]float64{0.5, 0.5}); err == nil {
		t.Error("wrong dimensionality accepted")
	}
	if err := tr.Insert([]float64{0.5, 0.5, 1.5}); err == nil {
		t.Error("out-of-cube point accepted")
	}
	if tr.Eta != 10 {
		t.Errorf("failed inserts changed Eta to %d", tr.Eta)
	}
}

func TestMergeFromEqualsWholeBuild(t *testing.T) {
	ds := uniformDataset(t, 5, 700, 7)
	whole, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	half := ds.Len() / 2
	left, err := Build(&dataset.Dataset{Dims: ds.Dims, Points: ds.Points[:half]}, 4)
	if err != nil {
		t.Fatal(err)
	}
	right, err := Build(&dataset.Dataset{Dims: ds.Dims, Points: ds.Points[half:]}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := left.MergeFrom(right); err != nil {
		t.Fatal(err)
	}
	if !treesEqual(t, whole, left) {
		t.Fatal("merged shards diverged from the whole build")
	}
}

func TestMergeFromValidation(t *testing.T) {
	a, _ := Build(uniformDataset(t, 3, 20, 1), 4)
	b, _ := Build(uniformDataset(t, 4, 20, 1), 4)
	if err := a.MergeFrom(b); err == nil {
		t.Error("dimensionality mismatch accepted")
	}
	c, _ := Build(uniformDataset(t, 3, 20, 1), 5)
	if err := a.MergeFrom(c); err == nil {
		t.Error("resolution mismatch accepted")
	}
	if err := a.MergeFrom(nil); err != nil {
		t.Errorf("nil merge should be a no-op, got %v", err)
	}
}

func TestBuildParallelEqualsBuild(t *testing.T) {
	ds := uniformDataset(t, 4, 2000, 11)
	whole, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		par, err := BuildParallel(ds, 4, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !treesEqual(t, whole, par) {
			t.Fatalf("workers=%d: parallel build diverged", workers)
		}
	}
}

func TestBuildParallelEmpty(t *testing.T) {
	if _, err := BuildParallel(dataset.New(3, 0), 4, 2); err == nil {
		t.Error("empty dataset accepted")
	}
}
