package ctree

import (
	"testing"

	"mrcc/internal/dataset"
)

// treesEqual compares two trees cell by cell (counts, half-space
// counts, and usedCell flags), ignoring iteration order.
func treesEqual(t *testing.T, a, b *Tree) bool {
	t.Helper()
	if a.D != b.D || a.H != b.H || a.Eta != b.Eta {
		return false
	}
	equal := true
	for h := 1; h <= a.H-1; h++ {
		a.WalkLevel(h, func(p Path, ra Ref) {
			rb := b.CellAt(p)
			if rb == NilRef || a.N(ra) != b.N(rb) || a.Used(ra) != b.Used(rb) {
				equal = false
				return
			}
			for j := 0; j < a.D; j++ {
				if a.P(ra, j) != b.P(rb, j) {
					equal = false
					return
				}
			}
		})
		if a.LevelCellCount(h) != b.LevelCellCount(h) {
			equal = false
		}
	}
	return equal
}

func TestInsertMatchesBuild(t *testing.T) {
	ds := uniformDataset(t, 4, 500, 3)
	built, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	incremental := New(4, 4)
	for _, p := range ds.Points {
		if err := incremental.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if !treesEqual(t, built, incremental) {
		t.Fatal("incremental insertion diverged from Build")
	}
}

func TestInsertValidation(t *testing.T) {
	tr, err := Build(uniformDataset(t, 3, 10, 1), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]float64{0.5, 0.5}); err == nil {
		t.Error("wrong dimensionality accepted")
	}
	if err := tr.Insert([]float64{0.5, 0.5, 1.5}); err == nil {
		t.Error("out-of-cube point accepted")
	}
	if tr.Eta != 10 {
		t.Errorf("failed inserts changed Eta to %d", tr.Eta)
	}
}

func TestMergeFromEqualsWholeBuild(t *testing.T) {
	ds := uniformDataset(t, 5, 700, 7)
	whole, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	half := ds.Len() / 2
	left, err := Build(&dataset.Dataset{Dims: ds.Dims, Points: ds.Points[:half]}, 4)
	if err != nil {
		t.Fatal(err)
	}
	right, err := Build(&dataset.Dataset{Dims: ds.Dims, Points: ds.Points[half:]}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := left.MergeFrom(right); err != nil {
		t.Fatal(err)
	}
	if !treesEqual(t, whole, left) {
		t.Fatal("merged shards diverged from the whole build")
	}
}

// TestMergeFromEmptyShard pins the edge case BuildParallel hits when a
// shard is empty: merging an empty tree must change nothing, in either
// direction.
func TestMergeFromEmptyShard(t *testing.T) {
	ds := uniformDataset(t, 4, 300, 5)
	whole, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	built, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	empty := New(4, 4)
	if err := built.MergeFrom(empty); err != nil {
		t.Fatalf("merging an empty shard: %v", err)
	}
	if !treesEqual(t, whole, built) {
		t.Fatal("merging an empty shard changed the tree")
	}
	// The other direction: counting a full shard into a fresh tree.
	empty = New(4, 4)
	if err := empty.MergeFrom(built); err != nil {
		t.Fatalf("merging into an empty tree: %v", err)
	}
	if !treesEqual(t, whole, empty) {
		t.Fatal("merging into an empty tree diverged from Build")
	}
}

// TestMergeFromSinglePointShards merges η one-point trees — the most
// extreme sharding possible — and must reproduce Build exactly: counts,
// P[j] half-space counts, and (clear) usedCell flags cell-for-cell.
func TestMergeFromSinglePointShards(t *testing.T) {
	ds := uniformDataset(t, 5, 120, 13)
	whole, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	merged := New(5, 4)
	for i := range ds.Points {
		shard, err := Build(&dataset.Dataset{Dims: ds.Dims, Points: ds.Points[i : i+1]}, 4)
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		if shard.Eta != 1 {
			t.Fatalf("point %d: shard Eta = %d, want 1", i, shard.Eta)
		}
		if err := merged.MergeFrom(shard); err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
	}
	if !treesEqual(t, whole, merged) {
		t.Fatal("single-point shards merged diverged from the whole build")
	}
}

// TestMergeFromDifferingIterationOrders builds the two shards from
// opposite traversal orders of the data, so their first-touch cell
// orders differ, then checks both merge orders (A←B and B←A) reproduce
// Build cell-for-cell. This is the property the deterministic scan
// tie-break relies on: merged trees may iterate differently but must
// count identically.
func TestMergeFromDifferingIterationOrders(t *testing.T) {
	ds := uniformDataset(t, 5, 800, 29)
	whole, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	half := ds.Len() / 2
	reversed := dataset.New(ds.Dims, ds.Len())
	for i := ds.Len() - 1; i >= 0; i-- {
		reversed.Append(ds.Points[i])
	}
	// Shard A: first half, natural order. Shard B: second half, reversed
	// order (same multiset of points, different insertion order).
	a, err := Build(&dataset.Dataset{Dims: ds.Dims, Points: ds.Points[:half]}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(&dataset.Dataset{Dims: ds.Dims, Points: reversed.Points[:ds.Len()-half]}, 4)
	if err != nil {
		t.Fatal(err)
	}
	aIntoB := New(ds.Dims, 4)
	for _, src := range []*Tree{b, a} {
		if err := aIntoB.MergeFrom(src); err != nil {
			t.Fatal(err)
		}
	}
	bIntoA := New(ds.Dims, 4)
	for _, src := range []*Tree{a, b} {
		if err := bIntoA.MergeFrom(src); err != nil {
			t.Fatal(err)
		}
	}
	if !treesEqual(t, whole, aIntoB) {
		t.Fatal("merge order B,A diverged from the whole build")
	}
	if !treesEqual(t, whole, bIntoA) {
		t.Fatal("merge order A,B diverged from the whole build")
	}
}

func TestMergeFromValidation(t *testing.T) {
	a, _ := Build(uniformDataset(t, 3, 20, 1), 4)
	b, _ := Build(uniformDataset(t, 4, 20, 1), 4)
	if err := a.MergeFrom(b); err == nil {
		t.Error("dimensionality mismatch accepted")
	}
	c, _ := Build(uniformDataset(t, 3, 20, 1), 5)
	if err := a.MergeFrom(c); err == nil {
		t.Error("resolution mismatch accepted")
	}
	if err := a.MergeFrom(nil); err != nil {
		t.Errorf("nil merge should be a no-op, got %v", err)
	}
}

func TestBuildParallelEqualsBuild(t *testing.T) {
	ds := uniformDataset(t, 4, 2000, 11)
	whole, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		par, err := BuildParallel(ds, 4, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !treesEqual(t, whole, par) {
			t.Fatalf("workers=%d: parallel build diverged", workers)
		}
	}
}

func TestBuildParallelEmpty(t *testing.T) {
	if _, err := BuildParallel(dataset.New(3, 0), 4, 2); err == nil {
		t.Error("empty dataset accepted")
	}
}
