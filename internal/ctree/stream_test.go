package ctree

import (
	"strings"
	"testing"

	"mrcc/internal/dataset"
)

// TestInsertBatchEqualsBuild pins that folding batches into a live
// tree through InsertBatch produces exactly the tree Build constructs
// from the whole dataset — the property the streaming ingest path
// relies on.
func TestInsertBatchEqualsBuild(t *testing.T) {
	for _, d := range []int{3, 9} {
		ds := uniformDataset(t, d, 7001, 61)
		whole, err := Build(ds, 4)
		if err != nil {
			t.Fatal(err)
		}
		live := New(d, 4)
		// Deliberately odd batch sizes, including one crossing the
		// internal chunk boundary.
		for lo := 0; lo < ds.Len(); {
			hi := lo + 1713
			if hi > ds.Len() {
				hi = ds.Len()
			}
			if err := live.InsertBatch(ds.Points[lo:hi]); err != nil {
				t.Fatal(err)
			}
			lo = hi
		}
		if !treesEqual(t, whole, live) {
			t.Fatalf("d=%d: batched incremental insertion diverged from Build", d)
		}
		if live.MemoryBytes() != whole.MemoryBytes() {
			t.Fatalf("d=%d: batched tree reports %d bytes, Build %d", d, live.MemoryBytes(), whole.MemoryBytes())
		}
	}
}

// TestInsertBatchAtomicOnError pins that a rejected batch leaves the
// tree untouched: a bad point anywhere in the batch must not leak any
// partial counts into a live serving tree.
func TestInsertBatchAtomicOnError(t *testing.T) {
	ds := uniformDataset(t, 5, 300, 62)
	tree, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := tree.Clone()
	bad := [][]float64{
		{0.1, 0.2, 0.3, 0.4, 0.5},
		{0.6, 0.7, 1.2, 0.8, 0.9}, // out of [0,1)
	}
	if err := tree.InsertBatch(bad); err == nil || !strings.Contains(err.Error(), "outside [0,1)") {
		t.Fatalf("InsertBatch(bad) = %v, want an out-of-range error", err)
	}
	short := [][]float64{{0.1, 0.2}}
	if err := tree.InsertBatch(short); err == nil || !strings.Contains(err.Error(), "want 5") {
		t.Fatalf("InsertBatch(short) = %v, want a dimensionality error", err)
	}
	if !treesEqual(t, before, tree) || tree.Eta != before.Eta {
		t.Fatal("rejected batch mutated the tree")
	}
	if err := tree.InsertBatch(nil); err != nil {
		t.Fatalf("InsertBatch(nil) = %v, want nil", err)
	}
}

// TestCloneIndependence pins Clone's contract: the copy matches the
// original cell-for-cell (including Used flags and the exact memory
// accounting) and further mutation of either tree leaves the other
// alone.
func TestCloneIndependence(t *testing.T) {
	ds := uniformDataset(t, 7, 2500, 63)
	orig, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty some state a β-search would leave behind.
	orig.WalkLevel(2, func(p Path, r Ref) { orig.SetUsed(r, true) })
	clone := orig.Clone()
	if !treesEqual(t, orig, clone) {
		t.Fatal("clone differs from the original")
	}
	if clone.MemoryBytes() != orig.MemoryBytes() {
		t.Fatalf("clone reports %d bytes, original %d", clone.MemoryBytes(), orig.MemoryBytes())
	}
	// Mutating the original (more points, flag churn) must not leak into
	// the clone, and vice versa.
	snapshot := clone.Clone()
	extra := uniformDataset(t, 7, 400, 64)
	if err := orig.InsertBatch(extra.Points); err != nil {
		t.Fatal(err)
	}
	orig.ResetUsed()
	if !treesEqual(t, snapshot, clone) {
		t.Fatal("mutating the original changed the clone")
	}
	if err := clone.InsertBatch(extra.Points); err != nil {
		t.Fatal(err)
	}
	clone.ResetUsed()
	if !treesEqual(t, orig, clone) {
		t.Fatal("identical mutations of original and clone diverged")
	}
}

// TestCloneThenMergeMatchesCombinedBuild pins the merged-view recipe
// the service's re-cluster loop uses: clone the aging tree, MergeFrom
// the active tree, and the result equals one build over both windows'
// points.
func TestCloneThenMergeMatchesCombinedBuild(t *testing.T) {
	d := 6
	agingPts := uniformDataset(t, d, 1500, 65)
	activePts := uniformDataset(t, d, 900, 66)
	aging, err := Build(agingPts, 4)
	if err != nil {
		t.Fatal(err)
	}
	active, err := Build(activePts, 4)
	if err != nil {
		t.Fatal(err)
	}
	merged := aging.Clone()
	if err := merged.MergeFrom(active); err != nil {
		t.Fatal(err)
	}
	all := &dataset.Dataset{Dims: d, Points: append(append([][]float64{}, agingPts.Points...), activePts.Points...)}
	whole, err := Build(all, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !treesEqual(t, whole, merged) {
		t.Fatal("clone+merge view diverged from the combined build")
	}
	if Equal(aging, merged) {
		t.Fatal("merge mutated nothing? merged view equals the aging tree")
	}
}
