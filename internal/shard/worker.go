// Worker side: accept one job per connection, build (or load) the
// shard tree, stream it back. Workers are stateless between
// connections — a coordinator retrying a shard on another worker needs
// no cleanup on the one that failed.
package shard

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"sync"

	"mrcc/internal/ctree"
	"mrcc/internal/dataset"
	"mrcc/internal/treeio"
)

// normEps keeps domain maxima strictly below 1 after normalization,
// matching the streaming service's embedding exactly (serve.normEps):
// a point at Max maps to 1-ε, never to the refused 1.0.
const normEps = 1e-9

// Serve runs the worker accept loop on l until ctx is canceled (or the
// listener fails). Each connection carries one job; job failures are
// reported to the coordinator over the connection, never by killing
// the loop. Returns nil on cancellation.
func Serve(ctx context.Context, l net.Listener) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		l.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			handleConn(ctx, conn)
		}()
	}
}

// handleConn executes one job and responds with the tree or the error.
func handleConn(ctx context.Context, conn net.Conn) {
	br := bufio.NewReader(conn)
	job, err := readJob(br)
	if err != nil {
		writeError(conn, err)
		return
	}
	t, err := runJob(ctx, job)
	bw := bufio.NewWriter(conn)
	if err != nil {
		writeError(bw, err)
	} else if _, err = writeTree(bw, t); err != nil {
		// The stream is torn (fault injection or a real write error);
		// nothing more can be said on this connection.
		bw.Flush()
		return
	}
	bw.Flush()
}

// runJob builds the shard tree the job describes.
func runJob(ctx context.Context, job Job) (*ctree.Tree, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	switch job.Kind {
	case KindSnapshot:
		t, err := treeio.LoadFileOptions(job.Path, treeio.LoadOptions{TrustChecksums: true})
		if err != nil {
			return nil, err
		}
		if job.Dims > 0 && t.D != job.Dims {
			return nil, fmt.Errorf("snapshot holds d=%d, job wants d=%d", t.D, job.Dims)
		}
		if job.H > 0 && t.H != job.H {
			return nil, fmt.Errorf("snapshot holds H=%d, job wants H=%d", t.H, job.H)
		}
		return t, nil
	case KindCSV:
		ds, err := readCSVShard(job)
		if err != nil {
			return nil, err
		}
		if job.Dims > 0 && ds.Dims != job.Dims {
			return nil, fmt.Errorf("%s holds %d-dimensional rows, job wants %d", job.Path, ds.Dims, job.Dims)
		}
		if err := NormalizeDomain(ds, job.Min, job.Max); err != nil {
			return nil, err
		}
		return ctree.BuildParallelOpts(ds, job.H, ctree.BuildOptions{Workers: job.Workers, Ctx: ctx})
	}
	return nil, fmt.Errorf("unknown job kind %q", job.Kind)
}

// readCSVShard parses the job's byte range (or whole file).
func readCSVShard(job Job) (*dataset.Dataset, error) {
	f, err := os.Open(job.Path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if job.End > job.Start {
		if _, err := f.Seek(job.Start, io.SeekStart); err != nil {
			return nil, err
		}
		r = io.LimitReader(f, job.End-job.Start)
	}
	ds, err := dataset.ReadCSV(bufio.NewReaderSize(r, 256<<10), job.Header)
	if err != nil {
		return nil, fmt.Errorf("%s[%d:%d]: %w", job.Path, job.Start, job.End, err)
	}
	return ds, nil
}

// NormalizeDomain maps domain-unit values into [0,1)^d with the
// streaming service's exact formula, refusing out-of-domain points.
// With no declared domain (nil min) it leaves the data untouched (the
// build validates [0,1) itself). Exported so a serial reference build
// over the same raw CSV embeds identically to the sharded workers.
func NormalizeDomain(ds *dataset.Dataset, min, max []float64) error {
	if min == nil {
		return nil
	}
	if len(min) != ds.Dims {
		return fmt.Errorf("domain declares %d axes, data holds %d", len(min), ds.Dims)
	}
	scale := make([]float64, ds.Dims)
	for j := range scale {
		scale[j] = (1 - normEps) / (max[j] - min[j])
	}
	for i, p := range ds.Points {
		for j, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("row %d axis %d value is not finite", i, j)
			}
			if v < min[j] || v > max[j] {
				return fmt.Errorf("row %d axis %d value %g outside the declared domain [%g, %g]", i, j, v, min[j], max[j])
			}
			p[j] = (v - min[j]) * scale[j]
		}
	}
	return nil
}
