package shard

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mrcc/internal/ctree"
	"mrcc/internal/dataset"
	"mrcc/internal/obs"
	"mrcc/internal/treeio"
)

// startWorkers launches n in-process workers on loopback listeners and
// returns their addresses. Real TCP, real framing — only the process
// boundary is elided (cmd/mrcc-shard's TestMain covers that).
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		wg.Add(1)
		go func() {
			defer wg.Done()
			Serve(ctx, l)
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
	return addrs
}

// writeTestCSV writes an n-point, d-axis dataset in [0,1) to a temp
// CSV and returns its path and the parsed dataset.
func writeTestCSV(t *testing.T, d, n int, seed int64, header bool) (string, *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.New(d, n)
	if header {
		names := make([]string, d)
		for j := range names {
			names[j] = "axis" + strconv.Itoa(j)
		}
		ds.Names = names
	}
	for i := 0; i < n; i++ {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		ds.Append(p)
	}
	path := filepath.Join(t.TempDir(), "points.csv")
	if err := ds.SaveCSVFile(path); err != nil {
		t.Fatal(err)
	}
	return path, ds
}

// TestRunMatchesSerialByteIdentical is the acceptance pin: for W in
// {1, 2, 4, 8} local workers the merged tree is ctree.Equal to the
// single-process build AND re-saves byte-identically through treeio
// (against the canonicalized serial tree — serial multi-chunk builds
// have their own arena order).
func TestRunMatchesSerialByteIdentical(t *testing.T) {
	const d, n, h = 6, 9000, 4 // > one build chunk, so canonicalization is exercised
	path, ds := writeTestCSV(t, d, n, 314, false)
	serial, err := ctree.Build(ds, h)
	if err != nil {
		t.Fatal(err)
	}
	canonSerial, err := ctree.Canonicalize(serial)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := treeio.Save(&want, canonSerial); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		addrs := startWorkers(t, min(w, 3))
		jobs, err := JobsForCSV(path, false, w, Job{H: h, Dims: d, Workers: 1})
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		col := obs.New(nil)
		merged, stats, err := Run(context.Background(), Options{
			Addrs:     addrs,
			Jobs:      jobs,
			Collector: col,
		})
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if !ctree.Equal(serial, merged) {
			t.Fatalf("w=%d: merged tree differs from serial build", w)
		}
		if merged.MemoryBytes() != serial.MemoryBytes() {
			t.Fatalf("w=%d: MemoryBytes %d != serial %d", w, merged.MemoryBytes(), serial.MemoryBytes())
		}
		var got bytes.Buffer
		if _, err := treeio.Save(&got, merged); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("w=%d: merged snapshot is not byte-identical to the serial one", w)
		}
		if stats.ShardsBuilt != len(jobs) || stats.Points != n {
			t.Fatalf("w=%d: stats %+v, want %d shards / %d points", w, stats, len(jobs), n)
		}
		if stats.BytesStreamed <= 0 {
			t.Fatalf("w=%d: no bytes accounted", w)
		}
		st := col.Finish()
		if st.Counters.ShardsBuilt != int64(len(jobs)) || st.Counters.ShardBytesStreamed != stats.BytesStreamed ||
			st.Counters.MergeRounds != int64(stats.MergeRounds) {
			t.Fatalf("w=%d: collector counters %+v disagree with stats %+v", w, st.Counters, stats)
		}
	}
}

// TestRunWithHeaderAndDomain checks the two production wrinkles at
// once: a CSV with a header row, values in domain units mapped by the
// workers with the serving formula.
func TestRunWithHeaderAndDomain(t *testing.T) {
	const d, n, h = 4, 3000, 4
	path, raw := writeTestCSV(t, d, n, 9, true)
	// Scale the stored CSV into domain units [10, 30).
	scaled := dataset.New(d, n)
	scaled.Names = raw.Names
	for _, p := range raw.Points {
		q := make([]float64, d)
		for j, v := range p {
			q[j] = 10 + 20*v
		}
		scaled.Append(q)
	}
	if err := scaled.SaveCSVFile(path); err != nil {
		t.Fatal(err)
	}
	min := make([]float64, d)
	max := make([]float64, d)
	for j := range min {
		min[j], max[j] = 10, 30
	}
	// The reference: normalize exactly like the workers, build serially.
	ref := dataset.New(d, n)
	for _, p := range scaled.Points {
		q := make([]float64, d)
		for j, v := range p {
			q[j] = (v - min[j]) * (1 - normEps) / (max[j] - min[j])
		}
		ref.Append(q)
	}
	serial, err := ctree.Build(ref, h)
	if err != nil {
		t.Fatal(err)
	}
	addrs := startWorkers(t, 2)
	jobs, err := JobsForCSV(path, true, 3, Job{H: h, Dims: d, Min: min, Max: max, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	merged, _, err := Run(context.Background(), Options{Addrs: addrs, Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if !ctree.Equal(serial, merged) {
		t.Fatal("domain-mapped sharded build differs from the serial reference")
	}
}

// TestRunSnapshotJobs exercises KindSnapshot fan-in: prebuilt shard
// snapshots merge into the same tree as building from the rows.
func TestRunSnapshotJobs(t *testing.T) {
	const d, n, h = 5, 4000, 4
	_, ds := writeTestCSV(t, d, n, 55, false)
	serial, err := ctree.Build(ds, h)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths := make([]string, 4)
	for i := range paths {
		lo, hi := i*n/4, (i+1)*n/4
		part := dataset.New(d, hi-lo)
		for _, p := range ds.Points[lo:hi] {
			part.Append(p)
		}
		tr, err := ctree.Build(part, h)
		if err != nil {
			t.Fatal(err)
		}
		paths[i] = filepath.Join(dir, "shard"+strconv.Itoa(i)+".snap")
		if _, err := treeio.SaveFile(paths[i], tr); err != nil {
			t.Fatal(err)
		}
	}
	addrs := startWorkers(t, 2)
	jobs, err := JobsForPaths(paths, KindSnapshot, false, Job{H: h, Dims: d})
	if err != nil {
		t.Fatal(err)
	}
	merged, stats, err := Run(context.Background(), Options{Addrs: addrs, Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if !ctree.Equal(serial, merged) {
		t.Fatal("snapshot fan-in differs from the serial build")
	}
	if stats.MergeRounds != 2 {
		t.Fatalf("4 shards merged in %d rounds, want 2", stats.MergeRounds)
	}
}

func TestRunSurfacesWorkerRefusal(t *testing.T) {
	addrs := startWorkers(t, 1)
	jobs := []Job{{Kind: KindCSV, Path: filepath.Join(t.TempDir(), "absent.csv"), H: 4}}
	_, _, err := Run(context.Background(), Options{Addrs: addrs, Jobs: jobs})
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("got %v, want *WorkerError", err)
	}
	if we.Shard != 0 || we.Addr != addrs[0] {
		t.Fatalf("error names shard %d addr %q, want 0 / %q", we.Shard, we.Addr, addrs[0])
	}
	if !strings.Contains(err.Error(), "absent.csv") {
		t.Fatalf("error %q does not name the missing input", err)
	}
}

func TestRunNoWorkers(t *testing.T) {
	// A dead address fails fast with a typed error instead of hanging.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	path, _ := writeTestCSV(t, 3, 50, 1, false)
	jobs, err := JobsForCSV(path, false, 2, Job{H: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Run(context.Background(), Options{Addrs: []string{addr}, Jobs: jobs})
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("got %v, want *WorkerError", err)
	}
}

func TestPartitionCSVCoversEveryRow(t *testing.T) {
	for _, header := range []bool{false, true} {
		path, ds := writeTestCSV(t, 3, 997, 123, header)
		for _, shards := range []int{1, 2, 5, 16} {
			ranges, err := PartitionCSV(path, header, shards)
			if err != nil {
				t.Fatalf("header=%v shards=%d: %v", header, shards, err)
			}
			total := 0
			var prevEnd int64 = -1
			for i, rg := range ranges {
				if rg.End <= rg.Start {
					t.Fatalf("header=%v shards=%d: empty range %d", header, shards, i)
				}
				if prevEnd >= 0 && rg.Start != prevEnd {
					t.Fatalf("header=%v shards=%d: gap before range %d", header, shards, i)
				}
				prevEnd = rg.End
				part, err := readCSVShard(Job{Kind: KindCSV, Path: path, Start: rg.Start, End: rg.End})
				if err != nil {
					t.Fatalf("header=%v shards=%d range %d: %v", header, shards, i, err)
				}
				total += part.Len()
			}
			if total != ds.Len() {
				t.Fatalf("header=%v shards=%d: ranges hold %d rows, file holds %d", header, shards, total, ds.Len())
			}
		}
	}
}

func TestPartitionCSVTinyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.csv")
	if err := os.WriteFile(path, []byte("0.1,0.2\n0.3,0.4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ranges, err := PartitionCSV(path, false, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) == 0 || len(ranges) > 2 {
		t.Fatalf("2-row file partitioned into %d ranges", len(ranges))
	}
	if _, err := PartitionCSV(path, false, 0); err == nil {
		t.Error("0 shards accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := PartitionCSV(empty, false, 2); err == nil {
		t.Error("empty file accepted")
	}
}

func TestJobValidate(t *testing.T) {
	good := Job{Kind: KindCSV, Path: "x.csv", H: 4}
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Job{
		{Kind: "tar", Path: "x", H: 4},
		{Kind: KindCSV, H: 4},
		{Kind: KindCSV, Path: "x", Start: 9, End: 3, H: 4},
		{Kind: KindCSV, Path: "x", Min: []float64{0}, H: 4},
		{Kind: KindCSV, Path: "x", Min: []float64{1}, Max: []float64{1}, H: 4},
	}
	for i, job := range cases {
		if err := job.validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, job)
		}
	}
}

// TestRunRejectsCorruptStream points the coordinator at a rogue server
// that frames garbage as a successful tree response: the checksummed
// snapshot decode must refuse it with a typed shard failure — trusted
// loading skips the structural pass, never the checksums.
func TestRunRejectsCorruptStream(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if _, err := readJob(conn); err != nil {
					return
				}
				// Magic + ok status + a plausible size prefix + garbage.
				resp := append([]byte(treeMagic), statusOK)
				body := bytes.Repeat([]byte{0xa5}, 4096)
				var prefix [8]byte
				prefix[0] = byte(len(body))
				prefix[1] = byte(len(body) >> 8)
				conn.Write(append(append(resp, prefix[:]...), body...))
			}()
		}
	}()
	path, _ := writeTestCSV(t, 3, 100, 2, false)
	jobs, err := JobsForCSV(path, false, 1, Job{H: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Run(context.Background(), Options{Addrs: []string{l.Addr().String()}, Jobs: jobs})
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("got %v, want *WorkerError", err)
	}
	var fe *treeio.FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("got %v, want a treeio.FormatError in the chain", err)
	}
}

// TestRunContextCancel pins that a canceled coordinator returns
// promptly with the cancellation, not a hang.
func TestRunContextCancel(t *testing.T) {
	addrs := startWorkers(t, 1)
	path, _ := writeTestCSV(t, 3, 200, 4, false)
	jobs, err := JobsForCSV(path, false, 2, Job{H: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = Run(ctx, Options{Addrs: addrs, Jobs: jobs})
	if err == nil {
		t.Fatal("canceled run succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled in the chain", err)
	}
}
