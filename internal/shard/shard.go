// Package shard is the multi-process Counting-tree build pipeline: a
// coordinator partitions the input dataset, hands each partition to a
// worker process over TCP, and reduces the returned shard trees with a
// hierarchical MergeFrom tournament.
//
// The paper's tree build is a sum of per-point count increments, so it
// is associative and order-independent — the property PR 1/5/8 pinned
// bit-identically inside one process and this package exploits across
// processes and machines (the multi-tree statistics program of Gray &
// Moore is the template). Each worker runs the ordinary radix/arena
// build (ctree.BuildParallelOpts) over its shard and streams the
// finished tree back as a size-prefixed treeio snapshot — the PR 6
// snapshot format IS the wire format, so a captured stream can be
// spooled to disk and inspected with the ordinary tooling. The
// coordinator reduces the W shard trees pairwise in ceil(log2 W)
// rounds (ctree.MergeTournament, lowest-shard-index tie-break) and
// canonicalizes the winner (ctree.Canonicalize), which restores the
// serial-equivalence guarantee in its strongest form: the result is
// not merely ctree.Equal to the single-process build — it re-saves
// byte-identically through treeio.
//
// Failure semantics: every worker-side failure (dial, a refused job, a
// died-mid-stream connection, a corrupt snapshot) surfaces at the
// coordinator as a typed *WorkerError naming the shard and address;
// the first failing shard (by index) wins, in-flight peers are
// abandoned by closing their connections, and the tournament never
// deadlocks — rounds drain fully before an error propagates. Nothing
// is spooled through temporary files, so there is nothing to orphan.
package shard

import (
	"fmt"
)

// JobKind selects what a worker reads to build its shard tree.
type JobKind string

const (
	// KindCSV builds from a byte range of a CSV file (or the whole
	// file when the range is empty) readable on the worker's host.
	KindCSV JobKind = "csv"
	// KindSnapshot loads a prebuilt treeio snapshot instead of
	// building — the path for fan-in of trees built elsewhere.
	KindSnapshot JobKind = "snapshot"
)

// Job describes one shard's work order, sent coordinator → worker as
// the JSON payload of a request frame. Paths are resolved on the
// WORKER's host: local spawn mode shares the filesystem, remote
// deployments pre-place per-worker inputs.
type Job struct {
	// Shard is the shard index; it decides merge tie-breaks and names
	// the shard in errors.
	Shard int `json:"shard"`
	// Kind selects the input form (KindCSV or KindSnapshot).
	Kind JobKind `json:"kind"`
	// Path is the input file on the worker's host.
	Path string `json:"path"`
	// Start/End bound the half-open byte range of a KindCSV Path this
	// shard parses. Both zero means the whole file. Ranges must begin
	// at a record boundary (PartitionCSV guarantees it).
	Start int64 `json:"start,omitempty"`
	End   int64 `json:"end,omitempty"`
	// Header marks the first record of the read range as a header row
	// to skip (only sensible for whole-file reads; PartitionCSV-cut
	// ranges never include the header).
	Header bool `json:"header,omitempty"`
	// Dims is the expected dimensionality; 0 accepts whatever the
	// input holds. Mismatches are refused, not truncated.
	Dims int `json:"dims,omitempty"`
	// H is the resolution count of the shard tree. Every job of one
	// build must agree (MergeFrom refuses mixed geometry).
	H int `json:"h"`
	// Min/Max declare the per-axis value domain. When set, the worker
	// maps values into [0,1)^d exactly like the streaming service
	// (out = (v-Min)·(1-ε)/(Max-Min)) and refuses out-of-domain
	// points; when nil, values must already lie in [0,1).
	Min []float64 `json:"min,omitempty"`
	Max []float64 `json:"max,omitempty"`
	// Workers is the in-process build parallelism of the shard build
	// (ctree.BuildOptions.Workers); <= 0 selects GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

// validate refuses jobs that could not possibly build.
func (j *Job) validate() error {
	switch j.Kind {
	case KindCSV, KindSnapshot:
	default:
		return fmt.Errorf("unknown job kind %q", j.Kind)
	}
	if j.Path == "" {
		return fmt.Errorf("job has no input path")
	}
	if j.Start < 0 || j.End < j.Start {
		return fmt.Errorf("byte range [%d, %d) is invalid", j.Start, j.End)
	}
	if (j.Min == nil) != (j.Max == nil) || len(j.Min) != len(j.Max) {
		return fmt.Errorf("domain bounds disagree: %d mins, %d maxs", len(j.Min), len(j.Max))
	}
	for k := range j.Min {
		if !(j.Max[k] > j.Min[k]) {
			return fmt.Errorf("domain axis %d is empty or inverted [%g, %g]", k, j.Min[k], j.Max[k])
		}
	}
	return nil
}

// WorkerError reports a shard whose work order failed — a dial error,
// a job the worker refused, a connection that died mid-stream, or a
// snapshot that failed validation on receipt. The coordinator returns
// the failing shard with the lowest index.
type WorkerError struct {
	// Shard is the failing shard's index.
	Shard int
	// Addr is the worker address the shard was assigned to (empty
	// when the failure happened before an address was chosen).
	Addr string
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *WorkerError) Error() string {
	if e.Addr == "" {
		return fmt.Sprintf("shard %d: %v", e.Shard, e.Err)
	}
	return fmt.Sprintf("shard %d (worker %s): %v", e.Shard, e.Addr, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *WorkerError) Unwrap() error { return e.Err }
