// Input partitioning. The coordinator cuts ONE large CSV into W
// byte ranges aligned on record boundaries, so each worker seeks
// straight to its range and parses only η/W points — the partitioning
// cost is W short reads around the cut points, not a coordinator-side
// scan of the whole file. (Per-worker input files and prebuilt
// snapshots skip partitioning entirely: one job per path.)
package shard

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// Range is a half-open byte range [Start, End) of an input file,
// aligned so Start sits at the beginning of a record and End just
// past the newline ending one.
type Range struct {
	Start, End int64
}

// PartitionCSV cuts the file into at most shards record-aligned byte
// ranges of roughly equal size. A header row is excluded from every
// range (workers always parse their range headerless). Empty ranges
// are dropped, so fewer than shards ranges come back for tiny files.
// The cut points are found by reading a few bytes at each candidate
// offset — O(shards) seeks, independent of the file size.
//
// Records are assumed to be newline-terminated with no quoted embedded
// newlines — true for the numeric CSVs this system ingests. A quoted
// multi-line field would be split mid-record and fail the worker's
// parse (an error, never a silently wrong tree).
func PartitionCSV(path string, header bool, shards int) ([]Range, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: partition into %d shards", shards)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	var dataStart int64
	if header {
		if dataStart, err = nextRecord(f, 0, size); err != nil {
			return nil, fmt.Errorf("shard: %s: locating the end of the header: %w", path, err)
		}
	}
	if dataStart >= size {
		return nil, fmt.Errorf("shard: %s holds no data rows", path)
	}
	ranges := make([]Range, 0, shards)
	prev := dataStart
	for i := 1; i <= shards; i++ {
		var cut int64
		if i == shards {
			cut = size
		} else {
			// Candidate offset, advanced to the next record boundary.
			candidate := dataStart + (size-dataStart)*int64(i)/int64(shards)
			if candidate < prev {
				candidate = prev
			}
			if cut, err = nextRecord(f, candidate, size); err != nil {
				return nil, fmt.Errorf("shard: %s: aligning cut %d: %w", path, i, err)
			}
		}
		if cut > prev {
			ranges = append(ranges, Range{Start: prev, End: cut})
			prev = cut
		}
	}
	return ranges, nil
}

// nextRecord returns the offset of the first record starting at or
// after off: off itself when it sits at a record start is NOT assumed —
// the scan always advances past the next newline, which is what a cut
// inside a record needs (callers pass offsets that are either 0 or
// strictly inside the previous record's tail).
func nextRecord(f *os.File, off, size int64) (int64, error) {
	const chunk = 64 << 10
	buf := make([]byte, chunk)
	for off < size {
		n, err := f.ReadAt(buf, off)
		if n == 0 && err != nil {
			if err == io.EOF {
				return size, nil
			}
			return 0, err
		}
		if i := bytes.IndexByte(buf[:n], '\n'); i >= 0 {
			return off + int64(i) + 1, nil
		}
		off += int64(n)
	}
	return size, nil
}

// JobsForCSV partitions one CSV into record-aligned byte ranges and
// returns a job per non-empty range. See Job for the field contract;
// shard indexes follow range order, so the merged result is identical
// to a serial build over the file's row order.
func JobsForCSV(path string, header bool, shards int, tpl Job) ([]Job, error) {
	ranges, err := PartitionCSV(path, header, shards)
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, len(ranges))
	for i, rg := range ranges {
		j := tpl
		j.Shard = i
		j.Kind = KindCSV
		j.Path = path
		j.Start, j.End = rg.Start, rg.End
		j.Header = false // ranges never include the header line
		jobs[i] = j
	}
	return jobs, nil
}

// JobsForPaths returns one whole-file job per input path (KindCSV with
// header applying to every file, or KindSnapshot ignoring it).
func JobsForPaths(paths []string, kind JobKind, header bool, tpl Job) ([]Job, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("shard: no input paths")
	}
	jobs := make([]Job, len(paths))
	for i, p := range paths {
		j := tpl
		j.Shard = i
		j.Kind = kind
		j.Path = p
		j.Header = header && kind == KindCSV
		jobs[i] = j
	}
	return jobs, nil
}
