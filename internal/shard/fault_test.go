//go:build fault

package shard

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mrcc/internal/ctree"
	"mrcc/internal/fault"
	"mrcc/internal/treeio"
)

// faultFixture builds a small sharded run's inputs: a CSV, 2 workers
// and 4 jobs. It returns the job set and the directory holding the
// input (for the orphan check).
func faultFixture(t *testing.T) (addrs []string, jobs []Job, dir string) {
	t.Helper()
	path, _ := writeTestCSV(t, 4, 2000, 77, false)
	jobs, err := JobsForCSV(path, false, 4, Job{H: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return startWorkers(t, 2), jobs, filepath.Dir(path)
}

// assertOnlyInput demands the input directory still hold exactly the
// one CSV: an aborted run must not strand temp files anywhere it
// touched.
func assertOnlyInput(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "points.csv" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("input dir holds %v, want only points.csv", names)
	}
}

// TestWorkerDiesMidStream arms shard.stream so one worker tears its
// snapshot stream after the ok status: the coordinator must surface a
// typed *WorkerError naming the shard (not hang, not decode garbage),
// and a subsequent run over the same workers must succeed — the fleet
// is not poisoned.
func TestWorkerDiesMidStream(t *testing.T) {
	t.Cleanup(fault.Reset)
	addrs, jobs, dir := faultFixture(t)
	boom := errors.New("worker crashed")
	fault.Set(fault.ShardStream, func() error { return boom })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, _, err := Run(ctx, Options{Addrs: addrs, Jobs: jobs})
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("got %v, want *WorkerError", err)
	}
	if we.Shard < 0 || we.Shard >= len(jobs) || we.Addr == "" {
		t.Fatalf("worker error does not name the failing shard/addr: %+v", we)
	}
	if hits := fault.Hits(fault.ShardStream); hits < 1 {
		t.Fatalf("shard.stream polled %d times", hits)
	}
	assertOnlyInput(t, dir)

	// The fault disarmed itself; the same fleet completes the retry.
	merged, stats, err := Run(ctx, Options{Addrs: addrs, Jobs: jobs})
	if err != nil {
		t.Fatalf("retry after the injected crash: %v", err)
	}
	if merged.Eta != 2000 || stats.ShardsBuilt != len(jobs) {
		t.Fatalf("retry built %d points over %d shards", merged.Eta, stats.ShardsBuilt)
	}
}

// TestMergeFaultDoesNotDeadlock arms shard.merge: the tournament must
// drain its in-flight round and surface the injected cause — never
// deadlock with a half-finished reduction.
func TestMergeFaultDoesNotDeadlock(t *testing.T) {
	t.Cleanup(fault.Reset)
	addrs, jobs, dir := faultFixture(t)
	boom := errors.New("merge fault")
	for _, after := range []int{1, 2, 3} {
		fault.Reset()
		fault.SetAfter(fault.ShardMerge, after, func() error { return boom })
		done := make(chan error, 1)
		go func() {
			_, _, err := Run(context.Background(), Options{Addrs: addrs, Jobs: jobs})
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, boom) {
				t.Fatalf("after=%d: got %v, want the injected cause", after, err)
			}
			var fe *fault.Error
			if !errors.As(err, &fe) || fe.Point != fault.ShardMerge {
				t.Fatalf("after=%d: %v is not a *fault.Error for shard.merge", after, err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("after=%d: tournament deadlocked", after)
		}
	}
	assertOnlyInput(t, dir)
}

// TestCorruptSnapshotRefused covers the corrupt-shard-tree paths: a
// worker handed a corrupted snapshot file refuses the job, and a
// coordinator receiving corrupted stream bytes rejects them — both as
// typed errors at the coordinator.
func TestCorruptSnapshotRefused(t *testing.T) {
	t.Cleanup(fault.Reset)
	_, ds := writeTestCSV(t, 3, 500, 11, false)
	tr, err := ctree.Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "shard0.snap")
	if _, err := treeio.SaveFile(snap, tr); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first column.
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	raw[treeio.HeaderSize+9] ^= 0x20
	if err := os.WriteFile(snap, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	addrs := startWorkers(t, 1)
	jobs, err := JobsForPaths([]string{snap}, KindSnapshot, false, Job{H: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Run(context.Background(), Options{Addrs: addrs, Jobs: jobs})
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("corrupt snapshot: got %v, want *WorkerError", err)
	}
}
