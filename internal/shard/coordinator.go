// Coordinator side: dispatch jobs round-robin over the worker
// addresses, collect the shard trees, reduce with the merge
// tournament, canonicalize.
package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"mrcc/internal/ctree"
	"mrcc/internal/fault"
	"mrcc/internal/obs"
)

// Options configures a coordinated sharded build.
type Options struct {
	// Addrs are the worker addresses ("host:port"); jobs are assigned
	// round-robin (job i → Addrs[i mod len]). Required.
	Addrs []string
	// Jobs are the shard work orders, one per shard. Shard indexes
	// are (re)assigned from slice order. Required.
	Jobs []Job
	// Parallel bounds the in-flight jobs and the per-round merge
	// parallelism; <= 0 selects len(Addrs).
	Parallel int
	// DialTimeout bounds each worker dial; 0 means 10 seconds.
	DialTimeout time.Duration
	// DistrustChecksums re-runs the full structural snapshot
	// validation on every received shard tree instead of trusting the
	// per-column checksums. Workers we spawned (or operate) satisfy
	// the trust contract, so the default is the fast path.
	DistrustChecksums bool
	// SkipCanonicalize returns the merged tree in merge-walk arena
	// order instead of rewriting it into the canonical (serial-build)
	// order. The cell set is identical either way; only snapshot
	// byte-identity with the serial build needs the rewrite.
	SkipCanonicalize bool
	// Collector, when set, receives the ShardsBuilt /
	// ShardBytesStreamed / MergeRounds observability counters.
	Collector *obs.Collector
}

// Stats reports what a coordinated build did.
type Stats struct {
	// ShardsBuilt is the number of shard trees received.
	ShardsBuilt int
	// BytesStreamed is the total snapshot bytes received from workers.
	BytesStreamed int64
	// MergeRounds is the tournament depth (ceil(log2 W)).
	MergeRounds int
	// Points is the merged tree's total point count.
	Points int
}

// Run executes the sharded build: every job is dispatched to a worker,
// the returned shard trees are reduced with the pairwise merge
// tournament (lowest shard index wins ties), and the winner is
// canonicalized so it re-saves byte-identically to a serial build of
// the same rows. On any shard failure the remaining connections are
// closed, the tournament is skipped, and the lowest-indexed failure
// comes back as a *WorkerError.
func Run(ctx context.Context, opt Options) (*ctree.Tree, Stats, error) {
	var stats Stats
	if len(opt.Jobs) == 0 {
		return nil, stats, fmt.Errorf("shard: no jobs")
	}
	if len(opt.Addrs) == 0 {
		return nil, stats, fmt.Errorf("shard: no worker addresses")
	}
	parallel := opt.Parallel
	if parallel <= 0 {
		parallel = len(opt.Addrs)
	}
	dialTimeout := opt.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 10 * time.Second
	}

	// Dispatch. Every job gets its own connection; a failure cancels
	// the group context, which closes in-flight connections via the
	// AfterFunc below — no shard can block the collection forever.
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	trees := make([]*ctree.Tree, len(opt.Jobs))
	bytesIn := make([]int64, len(opt.Jobs))
	errs := make([]error, len(opt.Jobs))
	sem := make(chan struct{}, parallel)
	done := make(chan int)
	for i := range opt.Jobs {
		go func(i int) {
			defer func() { done <- i }()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-gctx.Done():
				errs[i] = gctx.Err()
				return
			}
			job := opt.Jobs[i]
			job.Shard = i
			addr := opt.Addrs[i%len(opt.Addrs)]
			tree, n, err := runShard(gctx, addr, job, dialTimeout, !opt.DistrustChecksums)
			bytesIn[i] = n
			if err != nil {
				errs[i] = &WorkerError{Shard: i, Addr: addr, Err: err}
				cancel()
				return
			}
			trees[i] = tree
		}(i)
	}
	for range opt.Jobs {
		<-done
	}
	// Prefer the lowest-indexed ORGANIC failure: peers aborted by the
	// group cancellation report context.Canceled, which would mask the
	// shard that actually failed.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		return nil, stats, firstErr
	}
	for i := range trees {
		stats.ShardsBuilt++
		stats.BytesStreamed += bytesIn[i]
		opt.Collector.AddShardBuilt(bytesIn[i])
	}

	// Reduce. The check hook runs before every pairwise merge: it
	// observes cancellation and hosts the shard.merge fault point, and
	// the tournament drains the in-flight round before propagating, so
	// an injected fault can never deadlock it.
	check := func() error {
		if err := gctx.Err(); err != nil {
			return err
		}
		return fault.Inject(fault.ShardMerge)
	}
	merged, rounds, err := ctree.MergeTournament(trees, parallel, check)
	if err != nil {
		return nil, stats, fmt.Errorf("shard: merge tournament: %w", err)
	}
	stats.MergeRounds = rounds
	opt.Collector.SetMergeRounds(int64(rounds))
	if !opt.SkipCanonicalize {
		if merged, err = ctree.Canonicalize(merged); err != nil {
			return nil, stats, fmt.Errorf("shard: canonicalize: %w", err)
		}
	}
	stats.Points = merged.Eta
	return merged, stats, nil
}

// runShard performs one job exchange with one worker.
func runShard(ctx context.Context, addr string, job Job, dialTimeout time.Duration, trust bool) (*ctree.Tree, int64, error) {
	d := net.Dialer{Timeout: dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, 0, err
	}
	defer conn.Close()
	// Cancellation mid-exchange tears the connection down, unblocking
	// any pending read — the coordinator never waits on a dead peer.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if err := writeJob(conn, job); err != nil {
		return nil, 0, fmt.Errorf("sending job: %w", err)
	}
	t, n, err := readTree(conn, trust)
	if err != nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	return t, n, err
}
