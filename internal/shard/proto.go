// Wire protocol between coordinator and worker: one request/response
// exchange per connection, so there is no session state to resynchronize
// after a failure — a broken connection simply fails its one shard.
//
//	request:  "MRSHJOB1" | u32 LE payload length | JSON-encoded Job
//	response: "MRSHTRE1" | u8 status
//	  status 0 (ok):    size-prefixed treeio snapshot (treeio.SaveStream)
//	  status 1 (error): u32 LE length | UTF-8 error message
//
// The snapshot bytes after the status byte are exactly the PR 6 file
// format; every checksum and structural guarantee of treeio applies to
// the stream. Multi-byte integers are little-endian, matching treeio.
package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"mrcc/internal/ctree"
	"mrcc/internal/fault"
	"mrcc/internal/treeio"
)

const (
	jobMagic  = "MRSHJOB1"
	treeMagic = "MRSHTRE1"

	statusOK  = 0
	statusErr = 1

	// maxJobBytes bounds the JSON job payload a worker will read: a
	// job is a path plus two float arrays, never megabytes. A hostile
	// length prefix cannot force a large allocation.
	maxJobBytes = 1 << 20
	// maxErrBytes bounds the error message a coordinator will read
	// back.
	maxErrBytes = 1 << 16
)

// writeJob sends one work order.
func writeJob(w io.Writer, job Job) error {
	payload, err := json.Marshal(job)
	if err != nil {
		return fmt.Errorf("shard: encoding job: %w", err)
	}
	if len(payload) > maxJobBytes {
		return fmt.Errorf("shard: job payload is %d bytes, over the %d-byte bound", len(payload), maxJobBytes)
	}
	hdr := make([]byte, len(jobMagic)+4)
	copy(hdr, jobMagic)
	binary.LittleEndian.PutUint32(hdr[len(jobMagic):], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readJob receives one work order on the worker side.
func readJob(r io.Reader) (Job, error) {
	var job Job
	hdr := make([]byte, len(jobMagic)+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return job, fmt.Errorf("shard: reading job header: %w", err)
	}
	if string(hdr[:len(jobMagic)]) != jobMagic {
		return job, fmt.Errorf("shard: bad job magic %q", hdr[:len(jobMagic)])
	}
	n := binary.LittleEndian.Uint32(hdr[len(jobMagic):])
	if n == 0 || n > maxJobBytes {
		return job, fmt.Errorf("shard: job payload length %d outside (0, %d]", n, maxJobBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return job, fmt.Errorf("shard: reading job payload: %w", err)
	}
	if err := json.Unmarshal(payload, &job); err != nil {
		return job, fmt.Errorf("shard: decoding job: %w", err)
	}
	return job, nil
}

// writeTree streams the finished shard tree back to the coordinator
// and returns the snapshot bytes sent (prefix included). The
// fault.ShardStream point sits after the ok status goes out — firing
// it models a worker dying with a half-sent tree on the wire, which
// the coordinator must surface as a typed shard failure.
func writeTree(w io.Writer, t *ctree.Tree) (int64, error) {
	if _, err := io.WriteString(w, treeMagic); err != nil {
		return 0, err
	}
	if _, err := w.Write([]byte{statusOK}); err != nil {
		return 0, err
	}
	if err := fault.Inject(fault.ShardStream); err != nil {
		// Tear the stream believably: the size prefix goes out, the
		// body never follows.
		var prefix [8]byte
		binary.LittleEndian.PutUint64(prefix[:], uint64(treeio.SnapshotSize(t)))
		w.Write(prefix[:])
		return 0, err
	}
	return treeio.SaveStream(w, t)
}

// writeError reports a failed job back to the coordinator.
func writeError(w io.Writer, jobErr error) error {
	msg := []byte(jobErr.Error())
	if len(msg) > maxErrBytes {
		msg = msg[:maxErrBytes]
	}
	buf := make([]byte, len(treeMagic)+1+4, len(treeMagic)+1+4+len(msg))
	copy(buf, treeMagic)
	buf[len(treeMagic)] = statusErr
	binary.LittleEndian.PutUint32(buf[len(treeMagic)+1:], uint32(len(msg)))
	buf = append(buf, msg...)
	_, err := w.Write(buf)
	return err
}

// readTree receives a worker's response: the shard tree on success, or
// the worker's reported failure. trust selects the fast checksum-
// trusting snapshot decode (the default between our own processes).
// bytesIn reports the snapshot bytes consumed on success.
func readTree(r io.Reader, trust bool) (t *ctree.Tree, bytesIn int64, err error) {
	hdr := make([]byte, len(treeMagic)+1)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, 0, fmt.Errorf("reading response header: %w", err)
	}
	if string(hdr[:len(treeMagic)]) != treeMagic {
		return nil, 0, fmt.Errorf("bad response magic %q", hdr[:len(treeMagic)])
	}
	switch hdr[len(treeMagic)] {
	case statusOK:
		cr := &countingReader{r: r}
		t, err := treeio.LoadStream(cr, treeio.LoadOptions{TrustChecksums: trust})
		if err != nil {
			return nil, cr.n, fmt.Errorf("decoding shard tree: %w", err)
		}
		return t, cr.n, nil
	case statusErr:
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return nil, 0, fmt.Errorf("reading error frame: %w", err)
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > maxErrBytes {
			return nil, 0, fmt.Errorf("error frame length %d over the %d-byte bound", n, maxErrBytes)
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(r, msg); err != nil {
			return nil, 0, fmt.Errorf("reading error frame: %w", err)
		}
		return nil, 0, fmt.Errorf("worker refused the job: %s", msg)
	default:
		return nil, 0, fmt.Errorf("unknown response status %d", hdr[len(treeMagic)])
	}
}

// countingReader counts bytes consumed, for the ShardBytesStreamed
// observability counter.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
