#!/usr/bin/env bash
# Smoke test for cmd/mrcc-serve: boot the service on an ephemeral port,
# ingest two cluster batches, check that query answers change once the
# re-cluster loop absorbs the second batch, and shut down cleanly on
# SIGTERM. CI runs this (job "serve-smoke"); it also runs locally:
#
#   ./scripts/serve_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
bin="$(mktemp -d)/mrcc-serve"
out="$(mktemp)"
go build -o "$bin" ./cmd/mrcc-serve

"$bin" -addr 127.0.0.1:0 -dims 3 \
  -recluster-every 300ms -recluster-points 500 \
  >"$out" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

# The server prints "mrcc-serve listening on HOST:PORT" once bound.
for _ in $(seq 50); do
  addr="$(sed -n 's/^mrcc-serve listening on //p' "$out")"
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "server died during boot:"; cat "$out"; exit 1; }
  sleep 0.1
done
[ -n "${addr:-}" ] || { echo "server never reported its address:"; cat "$out"; exit 1; }
base="http://$addr"
echo "server up at $base"

# blob N points around (x,y,z) with +/-0.01 jitter, as CSV.
blob() {
  awk -v n="$1" -v x="$2" -v y="$3" -v z="$4" 'BEGIN {
    srand(7)
    for (i = 0; i < n; i++)
      printf "%.5f,%.5f,%.5f\n", x+0.02*(rand()-0.5), y+0.02*(rand()-0.5), z+0.02*(rand()-0.5)
  }'
}

# query prints the JSON answer for a point (or the error body).
query() { curl -sS "$base/query?p=$1"; }

# Batch one: a blob at (0.2, 0.2, 0.2). The 1000 points cross the
# -recluster-points threshold, so a view appears without waiting for
# the cadence.
blob 1000 0.2 0.2 0.2 | curl -sS -f -X POST -H 'Content-Type: text/csv' \
  --data-binary @- "$base/ingest" >/dev/null

for _ in $(seq 100); do
  query 0.2,0.2,0.2 | grep -q '"noise": false' && break
  sleep 0.1
done
query 0.2,0.2,0.2 | grep -q '"noise": false' \
  || { echo "first blob never became a cluster:"; query 0.2,0.2,0.2; exit 1; }
query 0.8,0.8,0.8 | grep -q '"noise": true' \
  || { echo "far corner should be noise before batch two:"; query 0.8,0.8,0.8; exit 1; }
echo "view 1 ok: first blob clustered, far corner is noise"

# Batch two: a blob at (0.8, 0.8, 0.8). After the next re-cluster tick
# the same query must flip from noise to a cluster hit — the published
# view actually tracks the stream.
blob 1000 0.8 0.8 0.8 | curl -sS -f -X POST -H 'Content-Type: text/csv' \
  --data-binary @- "$base/ingest" >/dev/null

for _ in $(seq 100); do
  query 0.8,0.8,0.8 | grep -q '"noise": false' && break
  sleep 0.1
done
query 0.8,0.8,0.8 | grep -q '"noise": false' \
  || { echo "query answer never changed after the re-cluster tick:"; query 0.8,0.8,0.8; exit 1; }
echo "view 2 ok: second blob clustered after re-cluster tick"

curl -sS -f "$base/stats" >/dev/null
curl -sS -f "$base/healthz" >/dev/null

# Clean SIGTERM: the process must drain and exit 0.
kill -TERM "$pid"
wait "$pid" || { echo "server exited non-zero on SIGTERM:"; cat "$out"; exit 1; }
trap - EXIT
echo "serve smoke ok"
