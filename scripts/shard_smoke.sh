#!/usr/bin/env bash
# Smoke test for cmd/mrcc-shard: boot two real worker processes on
# ephemeral loopback ports, run the coordinator over them with
# -check-serial (the merged tree must be byte-identical to a fresh
# single-process build), reload the emitted snapshot through
# mrcc-serve's warm-start path, and SIGTERM the workers cleanly. CI
# runs this (job "shard-smoke"); it also runs locally:
#
#   ./scripts/shard_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT
bin="$dir/mrcc-shard"
go build -o "$bin" ./cmd/mrcc-shard

# 6000 pseudo-random 5-dim rows in [0,1).
awk 'BEGIN {
  srand(11)
  for (i = 0; i < 6000; i++)
    printf "%.6f,%.6f,%.6f,%.6f,%.6f\n", 0.999*rand(), 0.999*rand(), 0.999*rand(), 0.999*rand(), 0.999*rand()
}' >"$dir/points.csv"

# Two worker processes on ephemeral ports; each prints
# "mrcc-shard worker listening on HOST:PORT" once bound.
pids=()
addrs=()
for i in 0 1; do
  out="$dir/worker$i.out"
  "$bin" -worker -listen 127.0.0.1:0 >"$out" 2>&1 &
  pids+=($!)
  for _ in $(seq 50); do
    addr="$(sed -n 's/^mrcc-shard worker listening on //p' "$out")"
    [ -n "$addr" ] && break
    kill -0 "${pids[$i]}" 2>/dev/null || { echo "worker $i died during boot:"; cat "$out"; exit 1; }
    sleep 0.1
  done
  [ -n "${addr:-}" ] || { echo "worker $i never reported its address:"; cat "$out"; exit 1; }
  addrs+=("$addr")
  addr=""
done
trap 'kill "${pids[@]}" 2>/dev/null || true; rm -rf "$dir"' EXIT
echo "workers up at ${addrs[0]}, ${addrs[1]}"

# Coordinate a 4-shard build over the 2 workers; -check-serial demands
# the merged tree re-save byte-identically to a single-process build.
coord_out="$dir/coord.out"
"$bin" -input "$dir/points.csv" -shards 4 \
  -worker-addrs "${addrs[0]},${addrs[1]}" \
  -check-serial -out "$dir/tree.snap" | tee "$coord_out"
grep -q 'check-serial: ok' "$coord_out" \
  || { echo "coordinator never confirmed serial equivalence"; exit 1; }
grep -q '6000 points' "$coord_out" \
  || { echo "coordinator did not fold all 6000 points"; exit 1; }

# The emitted snapshot must warm-start mrcc-serve (trusted fast load).
serve="$dir/mrcc-serve"
go build -o "$serve" ./cmd/mrcc-serve
serve_out="$dir/serve.out"
"$serve" -addr 127.0.0.1:0 -dims 5 -snapshot "$dir/tree.snap" -trust-snapshot >"$serve_out" 2>&1 &
spid=$!
for _ in $(seq 50); do
  saddr="$(sed -n 's/^mrcc-serve listening on //p' "$serve_out")"
  [ -n "$saddr" ] && break
  kill -0 "$spid" 2>/dev/null || { echo "serve died during warm-start:"; cat "$serve_out"; exit 1; }
  sleep 0.1
done
[ -n "${saddr:-}" ] || { echo "serve never reported its address:"; cat "$serve_out"; exit 1; }
curl -sS -f "http://$saddr/stats" | grep -q '"activePoints": 6000' \
  || { echo "warm-started service does not hold the 6000 sharded points:"; curl -sS "http://$saddr/stats"; exit 1; }
kill -TERM "$spid"
wait "$spid" || { echo "serve exited non-zero on SIGTERM:"; cat "$serve_out"; exit 1; }
echo "warm-start ok: mrcc-serve booted from the sharded snapshot"

# Clean SIGTERM: every worker must exit 0.
kill -TERM "${pids[@]}"
for pid in "${pids[@]}"; do
  wait "$pid" || { echo "worker $pid exited non-zero on SIGTERM"; exit 1; }
done
trap 'rm -rf "$dir"' EXIT
echo "shard smoke ok"
