package mrcc_test

import (
	"fmt"
	"math/rand"

	"mrcc"
)

// ExampleRun clusters two tight Gaussian clusters living in overlapping
// subspaces of a 5-dimensional space plus background noise, and prints
// each cluster's relevant axes.
func ExampleRun() {
	rng := rand.New(rand.NewSource(11))
	var rows [][]float64
	for i := 0; i < 1200; i++ { // cluster in axes {0, 1, 2}
		rows = append(rows, []float64{
			0.2 + 0.02*rng.NormFloat64(),
			0.3 + 0.02*rng.NormFloat64(),
			0.2 + 0.02*rng.NormFloat64(),
			rng.Float64(), rng.Float64(),
		})
	}
	for i := 0; i < 1200; i++ { // cluster in axes {1, 2, 3}
		rows = append(rows, []float64{
			rng.Float64(),
			0.8 + 0.02*rng.NormFloat64(),
			0.8 + 0.02*rng.NormFloat64(),
			0.6 + 0.02*rng.NormFloat64(),
			rng.Float64(),
		})
	}
	for i := 0; i < 240; i++ { // noise
		rows = append(rows, []float64{
			rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(),
		})
	}

	res, err := mrcc.Run(rows, mrcc.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", res.NumClusters())
	for _, c := range res.Clusters {
		fmt.Printf("cluster %d relevant axes: %v\n", c.ID, c.RelevantAxes())
	}
	// Output:
	// clusters: 2
	// cluster 0 relevant axes: [0 1 2]
	// cluster 1 relevant axes: [1 2 3]
}
