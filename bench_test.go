// Benchmarks: one testing.B target per table/figure of the paper's
// evaluation (the experiment IDs of DESIGN.md). They run scaled-down
// workloads so `go test -bench=.` finishes on a laptop; the full-size
// regeneration lives in cmd/experiments.
//
// Every benchmark reports quality as a custom metric next to the timing,
// so a regression in either shows up in the same place.
package mrcc_test

import (
	"fmt"
	"testing"
	"time"

	"mrcc/internal/core"
	"mrcc/internal/ctree"
	"mrcc/internal/dataset"
	"mrcc/internal/eval"
	"mrcc/internal/experiments"
	"mrcc/internal/synthetic"
)

// benchScale shrinks the catalogue datasets for the bench run.
const benchScale = 0.08

func benchDataset(b *testing.B, name string) (*dataset.Dataset, *synthetic.GroundTruth) {
	b.Helper()
	cfg, err := synthetic.CatalogueConfig(name)
	if err != nil {
		b.Fatal(err)
	}
	ds, gt, err := synthetic.Generate(cfg.Scale(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	return ds, gt
}

func reportQuality(b *testing.B, res *core.Result, gt *synthetic.GroundTruth) {
	b.Helper()
	rel := make([][]bool, len(res.Clusters))
	for i, c := range res.Clusters {
		rel[i] = c.Relevant
	}
	rep, err := eval.Compare(
		&eval.Clustering{Labels: res.Labels, Relevant: rel},
		&eval.Clustering{Labels: gt.Labels, Relevant: gt.Relevant},
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.Quality, "quality")
	b.ReportMetric(rep.SubspacesQuality, "subspaceQ")
}

// BenchmarkFig4Alpha — Fig. 4a-c: MrCC across significance levels on the
// (scaled) 10d dataset; the Counting-tree is shared, as only phase two
// depends on α.
func BenchmarkFig4Alpha(b *testing.B) {
	ds, gt := benchDataset(b, "10d")
	tree, err := ctree.Build(ds, core.DefaultH)
	if err != nil {
		b.Fatal(err)
	}
	for _, alpha := range []float64{1e-3, 1e-10, 1e-40, 1e-160} {
		b.Run(fmt.Sprintf("alpha=%.0e", alpha), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				tree.ResetUsed()
				var err error
				res, err = core.RunOnTree(tree, ds, core.Config{Alpha: alpha})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportQuality(b, res, gt)
		})
	}
}

// BenchmarkFig4H — Fig. 4d-f: MrCC across resolution counts on the
// (scaled) 10d dataset; time and memory grow with H, Quality saturates.
func BenchmarkFig4H(b *testing.B) {
	ds, gt := benchDataset(b, "10d")
	for _, h := range []int{4, 5, 10, 20} {
		b.Run(fmt.Sprintf("H=%d", h), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = core.Run(ds, core.Config{H: h})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportQuality(b, res, gt)
		})
	}
}

// benchCompareGroup runs every method once per iteration on the named
// (scaled) dataset — the engine behind the Figure 5 comparisons. HARP
// runs on a subsample, exactly as in the harness, or its quadratic cost
// would dwarf every other bar.
func benchCompareGroup(b *testing.B, names []string) {
	b.Helper()
	opt := experiments.Options{Scale: 1, HarpCap: 400}
	for _, name := range names {
		ds, gt := benchDataset(b, name)
		for _, m := range experiments.Methods(opt) {
			method := m
			runDS, runGT := ds, gt
			if m.Name == "HARP" {
				runDS, runGT, _ = experiments.Subsample(ds, gt, opt.HarpCap)
			}
			b.Run(name+"/"+m.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := method.Run(runDS, runGT, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig5FirstGroup — Fig. 5a-c and 5s: all methods on (scaled)
// representatives of the first group.
func BenchmarkFig5FirstGroup(b *testing.B) {
	benchCompareGroup(b, []string{"6d", "12d", "18d"})
}

// BenchmarkFig5Noise — Fig. 5d-f: noise scaling endpoints.
func BenchmarkFig5Noise(b *testing.B) {
	benchCompareGroup(b, []string{"5o", "25o"})
}

// BenchmarkFig5Points — Fig. 5g-i: point scaling endpoints.
func BenchmarkFig5Points(b *testing.B) {
	benchCompareGroup(b, []string{"50k", "250k"})
}

// BenchmarkFig5Clusters — Fig. 5j-l: cluster scaling endpoints.
func BenchmarkFig5Clusters(b *testing.B) {
	benchCompareGroup(b, []string{"5c", "25c"})
}

// BenchmarkFig5Dims — Fig. 5m-o: dimensionality scaling endpoints.
func BenchmarkFig5Dims(b *testing.B) {
	benchCompareGroup(b, []string{"5d_s", "30d_s"})
}

// BenchmarkFig5Rotated — Fig. 5p-r: MrCC on rotated datasets (the
// paper's robustness-to-rotation claim).
func BenchmarkFig5Rotated(b *testing.B) {
	for _, name := range []string{"10d_r", "18d_r"} {
		ds, gt := benchDataset(b, name)
		b.Run(name+"/MrCC", func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = core.Run(ds, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportQuality(b, res, gt)
		})
	}
}

// BenchmarkFig5Subspaces — Fig. 5s: the Subspaces Quality evaluation
// itself (axis-set precision/recall over a full MrCC result).
func BenchmarkFig5Subspaces(b *testing.B) {
	ds, gt := benchDataset(b, "14d")
	res, err := core.Run(ds, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rel := make([][]bool, len(res.Clusters))
	for i, c := range res.Clusters {
		rel[i] = c.Relevant
	}
	found := &eval.Clustering{Labels: res.Labels, Relevant: rel}
	real := &eval.Clustering{Labels: gt.Labels, Relevant: gt.Relevant}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Compare(found, real); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Real — Fig. 5t: MrCC on the (scaled) KDD Cup 2008
// surrogate, left MLO view.
func BenchmarkFig5Real(b *testing.B) {
	ds, gt, err := synthetic.KDDCup2008Surrogate(synthetic.LeftMLO,
		synthetic.KDDConfig{ROIs: 4000, Seed: 2008})
	if err != nil {
		b.Fatal(err)
	}
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res, err = core.Run(ds, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportQuality(b, res, gt)
}

// BenchmarkParallelPipeline measures the end-to-end pipeline — sharded
// tree build, chunked convolution scan, parallel labeling — across
// worker counts on a 100k-point, 10-dimensional dataset. Each
// sub-benchmark reports points/s; the workers>1 runs additionally
// report their wall-clock speedup over the workers=1 sub-benchmark of
// the same invocation. The equivalence suite
// (internal/core/parallel_equiv_test.go) separately proves the outputs
// are identical, so this benchmark only has to watch the clock.
func BenchmarkParallelPipeline(b *testing.B) {
	ds, gt, err := synthetic.Generate(synthetic.Config{
		Dims: 10, Points: 100000, Clusters: 5, NoiseFrac: 0.15,
		MinClusterDim: 5, MaxClusterDim: 10, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	var serialNsPerOp float64
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res, err = core.Run(ds, core.Config{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(float64(ds.Len())/(nsPerOp/1e9), "points/s")
			if workers == 1 {
				serialNsPerOp = nsPerOp
			} else if serialNsPerOp > 0 {
				b.ReportMetric(serialNsPerOp/nsPerOp, "speedup")
			}
			reportQuality(b, res, gt)
		})
	}
	// The observability layer promises < 2% wall-time overhead
	// (DESIGN.md §6): the serial run with stats on reports its overhead
	// relative to the plain workers=1 sub-benchmark above.
	b.Run("workers=1/stats", func(b *testing.B) {
		var res *core.Result
		for i := 0; i < b.N; i++ {
			res, err = core.Run(ds, core.Config{Workers: 1, CollectStats: true})
			if err != nil {
				b.Fatal(err)
			}
		}
		nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(float64(ds.Len())/(nsPerOp/1e9), "points/s")
		if serialNsPerOp > 0 {
			b.ReportMetric(100*(nsPerOp-serialNsPerOp)/serialNsPerOp, "stats-overhead-%")
		}
		if res.Stats == nil {
			b.Fatal("CollectStats produced no stats")
		}
		reportQuality(b, res, gt)
	})
}

// BenchmarkBetaSearch isolates phase two — the β-cluster search over a
// pre-built Counting-tree — on a 100k-point, 15-dimensional dataset
// with 10 subspace clusters. The naive/workers=1 sub-benchmark is the
// pre-PR scan (per-pass re-convolution over a tree walk, kept behind
// core.Config.NaiveScan); the cached sub-benchmarks are the default
// one-shot convolution cache at 1, 4 and 8 workers. Each sub-benchmark
// reports the phase-two wall time (betaSearch-ms) next to the full
// RunOnTree timing, and the cached runs report their phase-two speedup
// over the naive baseline. The scan-equivalence suite
// (internal/core/scan_equiv_test.go) separately proves the outputs
// identical, so this benchmark only has to watch the clock.
func BenchmarkBetaSearch(b *testing.B) {
	ds, _, err := synthetic.Generate(synthetic.Config{
		Dims: 15, Points: 100000, Clusters: 10, NoiseFrac: 0.15,
		MinClusterDim: 8, MaxClusterDim: 13, Seed: 314,
	})
	if err != nil {
		b.Fatal(err)
	}
	tree, err := ctree.Build(ds, core.DefaultH)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name    string
		naive   bool
		workers int
	}{
		{"naive/workers=1", true, 1},
		{"cached/workers=1", false, 1},
		{"cached/workers=4", false, 4},
		{"cached/workers=8", false, 8},
	}
	var naivePhase2 float64 // ns per op of the naive workers=1 baseline
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var res *core.Result
			var phase2 time.Duration
			for i := 0; i < b.N; i++ {
				tree.ResetUsed()
				res, err = core.RunOnTree(tree, ds, core.Config{
					NaiveScan: tc.naive, Workers: tc.workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				phase2 += res.Timings.FindBetas
			}
			if len(res.Betas) < 8 {
				b.Fatalf("only %d β-clusters found, want >= 8 (phase two underloaded)", len(res.Betas))
			}
			phase2NsPerOp := float64(phase2.Nanoseconds()) / float64(b.N)
			b.ReportMetric(phase2NsPerOp/1e6, "betaSearch-ms")
			if tc.naive && tc.workers == 1 {
				naivePhase2 = phase2NsPerOp
			} else if naivePhase2 > 0 {
				b.ReportMetric(naivePhase2/phase2NsPerOp, "betaSearch-speedup")
			}
		})
	}
}

// BenchmarkScalingEta — T-cmplx: MrCC runtime versus the number of
// points (the paper's linearity-in-η claim).
func BenchmarkScalingEta(b *testing.B) {
	for _, eta := range []int{5000, 10000, 20000, 40000} {
		ds, _, err := synthetic.Generate(synthetic.Config{
			Dims: 10, Points: eta, Clusters: 5, NoiseFrac: 0.15,
			MinClusterDim: 5, MaxClusterDim: 10, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("eta=%d", eta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(ds, core.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalingD — T-cmplx: MrCC runtime versus dimensionality (the
// quasi-linearity-in-d claim).
func BenchmarkScalingD(b *testing.B) {
	for _, d := range []int{5, 10, 20, 30} {
		ds, _, err := synthetic.Generate(synthetic.Config{
			Dims: d, Points: 10000, Clusters: 5, NoiseFrac: 0.15,
			MinClusterDim: 5, MaxClusterDim: d, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(ds, core.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalingH — T-cmplx: Counting-tree build versus H (linear
// memory, super-linear time at depth, per Fig. 4e-f).
func BenchmarkScalingH(b *testing.B) {
	ds, _, err := synthetic.Generate(synthetic.Config{
		Dims: 10, Points: 10000, Clusters: 5, NoiseFrac: 0.15,
		MinClusterDim: 5, MaxClusterDim: 10, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, h := range []int{4, 8, 12, 16} {
		b.Run(fmt.Sprintf("H=%d", h), func(b *testing.B) {
			var tree *ctree.Tree
			for i := 0; i < b.N; i++ {
				tree, err = ctree.Build(ds, h)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tree.MemoryBytes())/1024, "treeKB")
		})
	}
}

// BenchmarkAblationMask — A-mask: face-only versus full 3^d Laplacian
// mask (the paper's O(d) vs O(3^d) argument, Section III-B).
func BenchmarkAblationMask(b *testing.B) {
	ds, gt := benchDataset(b, "6d")
	for _, full := range []bool{false, true} {
		name := "face-only"
		if full {
			name = "full-mask"
		}
		b.Run(name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = core.Run(ds, core.Config{FullMask: full})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportQuality(b, res, gt)
		})
	}
}

// BenchmarkAblationMDL — A-mdl: the MDL-tuned relevance cut versus
// fixed thresholds.
func BenchmarkAblationMDL(b *testing.B) {
	ds, gt := benchDataset(b, "10d")
	for _, thr := range []float64{0, 50, 95} {
		name := "MDL"
		if thr > 0 {
			name = fmt.Sprintf("fixed=%.0f", thr)
		}
		b.Run(name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = core.Run(ds, core.Config{FixedRelevanceThreshold: thr})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportQuality(b, res, gt)
		})
	}
}
