package mrcc_test

import (
	"math"
	"testing"

	"mrcc"
)

func TestSoftMembershipsFacade(t *testing.T) {
	rows := twoClusterRows(100, 900) // arbitrary scale: facade renormalizes
	res, err := mrcc.Run(rows, mrcc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := mrcc.DatasetFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	soft, err := mrcc.SoftMemberships(ds, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(soft) != len(rows) {
		t.Fatalf("got %d rows, want %d", len(soft), len(rows))
	}
	k := res.NumClusters()
	hardAgree, clustered := 0, 0
	for i, row := range soft {
		if len(row) != k+1 {
			t.Fatalf("row %d has %d columns, want %d", i, len(row), k+1)
		}
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
		if lb := res.Labels[i]; lb != mrcc.Noise {
			clustered++
			best, bestP := -1, -1.0
			for c, v := range row {
				if v > bestP {
					best, bestP = c, v
				}
			}
			if best == lb {
				hardAgree++
			}
		}
	}
	if clustered == 0 {
		t.Fatal("no clustered points")
	}
	if frac := float64(hardAgree) / float64(clustered); frac < 0.9 {
		t.Errorf("soft argmax agrees with hard labels on only %.1f%%", 100*frac)
	}
	// Mutated data must be rejected.
	bad, _ := mrcc.DatasetFromRows(rows[:10])
	if _, err := mrcc.SoftMemberships(bad, res); err == nil {
		t.Error("mismatched dataset accepted")
	}
}
