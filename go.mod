module mrcc

go 1.22
