package mrcc_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mrcc"
)

// unnormalizedRows returns rows at an arbitrary scale so the facade
// must take the clone+normalize path.
func unnormalizedRows() [][]float64 {
	rows := make([][]float64, 400)
	for i := range rows {
		rows[i] = []float64{float64(i), float64(i%7) * 10, 100 - float64(i)/2}
	}
	return rows
}

// TestRunContextEqualsRun proves the context-aware facade entry points
// are bit-identical to their plain counterparts under a background
// context.
func TestRunContextEqualsRun(t *testing.T) {
	rows := unnormalizedRows()
	want, err := mrcc.Run(rows, mrcc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := mrcc.RunContext(context.Background(), rows, mrcc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Labels, want.Labels) {
		t.Fatal("RunContext(Background) labels differ from Run")
	}
}

// TestRunDatasetContextPreCancelled proves a cancelled context aborts
// before normalization touches any memory: the error is a typed
// *PipelineError naming the normalize phase, and the caller's dataset
// is bit-identical afterwards.
func TestRunDatasetContextPreCancelled(t *testing.T) {
	ds, err := mrcc.DatasetFromRows(unnormalizedRows())
	if err != nil {
		t.Fatal(err)
	}
	snapshot := ds.Clone()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := mrcc.RunDatasetContext(ctx, ds, mrcc.Config{})
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
	var pe *mrcc.PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PipelineError, got %T: %v", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause is not context.Canceled: %v", err)
	}
	if pe.Phase != "normalize" {
		t.Fatalf("phase %q, want normalize", pe.Phase)
	}
	if !reflect.DeepEqual(ds.Points, snapshot.Points) {
		t.Fatal("aborted run mutated the caller's dataset")
	}
}

// TestFacadeErrorTypesSurvive proves the re-exported error aliases
// interoperate with the core types through errors.As at the facade
// boundary: a memory-limited run yields a *mrcc.ResourceError.
func TestFacadeErrorTypesSurvive(t *testing.T) {
	rows := unnormalizedRows()
	_, err := mrcc.RunContext(context.Background(), rows, mrcc.Config{MemoryLimitBytes: 1024})
	var re *mrcc.ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("want *mrcc.ResourceError, got %T: %v", err, err)
	}
	if re.LimitBytes != 1024 {
		t.Fatalf("malformed ResourceError: %+v", re)
	}
}
